"""Network latency model.

Latency between nodes is derived from their localities:

* same node:          ~0 (loopback)
* same zone:          LAN round trip (default 0.5 ms)
* same region:        inter-zone round trip (default 1.0 ms)
* different regions:  the inter-region RTT matrix

The default matrix is Table 1 of the paper (measured GCP round-trip
times in milliseconds).  Regions not present in a matrix fall back to a
synthetic great-circle-flavoured estimate so experiments can scale to
arbitrarily many regions (Fig 6 uses 26).

The model supports per-message jitter and, through the
:class:`FaultPlane`, a full chaos-engineering fault surface: symmetric
region partitions (legacy), *asymmetric* per-link cuts (node-pair or
region-pair, one direction at a time), seeded per-link packet loss,
latency multipliers (gray/slow nodes and congested links), and node
crash-restart cycles.  All fault sampling is deterministic under the
plane's seed.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, Iterable, List, Optional, Tuple, Union

from .core import Future, Process, Simulator

__all__ = [
    "TABLE1_RTT_MS",
    "TABLE1_REGIONS",
    "FaultPlane",
    "LatencyModel",
    "Network",
    "NetworkUnavailableError",
    "RpcTimeoutError",
    "synthetic_rtt_matrix",
]

#: Table 1 of the paper: inter-region round-trip times in milliseconds.
TABLE1_REGIONS = (
    "us-east1",
    "us-west1",
    "europe-west2",
    "asia-northeast1",
    "australia-southeast1",
)

_TABLE1_UPPER = {
    ("us-east1", "us-west1"): 63.0,
    ("us-east1", "europe-west2"): 87.0,
    ("us-east1", "asia-northeast1"): 155.0,
    ("us-east1", "australia-southeast1"): 198.0,
    ("us-west1", "europe-west2"): 132.0,
    ("us-west1", "asia-northeast1"): 90.0,
    ("us-west1", "australia-southeast1"): 156.0,
    ("europe-west2", "asia-northeast1"): 222.0,
    ("europe-west2", "australia-southeast1"): 274.0,
    ("asia-northeast1", "australia-southeast1"): 113.0,
}


def _symmetrize(upper: Dict[Tuple[str, str], float]) -> Dict[Tuple[str, str], float]:
    full = {}
    for (a, b), rtt in upper.items():
        full[(a, b)] = rtt
        full[(b, a)] = rtt
    return full


TABLE1_RTT_MS: Dict[Tuple[str, str], float] = _symmetrize(_TABLE1_UPPER)


def synthetic_rtt_matrix(regions: Iterable[str], seed: int = 7,
                         min_rtt: float = 20.0,
                         max_rtt: float = 280.0) -> Dict[Tuple[str, str], float]:
    """Generate a plausible symmetric RTT matrix for arbitrary regions.

    Each region gets a point on a ring; RTT grows with ring distance,
    spanning roughly the same 20-280 ms envelope as Table 1.  Used by the
    Fig 6 scalability experiment, which needs 26 regions.
    """
    regions = list(regions)
    rng = random.Random(seed)
    positions = {r: i / len(regions) for i, r in enumerate(regions)}
    matrix: Dict[Tuple[str, str], float] = {}
    for a in regions:
        for b in regions:
            if a == b:
                continue
            distance = abs(positions[a] - positions[b])
            distance = min(distance, 1.0 - distance) * 2.0  # 0..1 around ring
            base = min_rtt + (max_rtt - min_rtt) * distance
            noise = rng.uniform(0.9, 1.1)
            key = (a, b) if a < b else (b, a)
            if key not in matrix:
                matrix[key] = base * noise
    return _symmetrize(matrix)


class NetworkUnavailableError(Exception):
    """The destination is unreachable (partition or dead node)."""


class RpcTimeoutError(NetworkUnavailableError):
    """An RPC gave no answer in time (lost packet, gray node, hang).

    Subclasses :class:`NetworkUnavailableError` so every retry/failover
    path that tolerates partitions also tolerates timeouts."""


#: Link endpoints are node ids (int) or region names (str).
LinkEnd = Union[int, str]


class FaultPlane:
    """Deterministic fault state consulted on every message.

    Directional by design: ``cut_link(a, b)`` blocks only a→b traffic,
    which is what makes asymmetric-partition scenarios (acks lost while
    appends still flow) expressible.  Loss and latency factors compose:
    a message samples loss once per matching link rule, and its latency
    is multiplied by every matching factor.
    """

    def __init__(self, seed: int = 0):
        self._rng = random.Random(seed ^ 0x5EED_FA17)
        #: Bumped on every mutation; caches keyed on fault state (message
        #: fast paths, leaseholder routing) compare generations instead of
        #: re-walking the tables.
        self.generation = 0
        #: True iff any fault is currently installed.  The message hot
        #: path consults this one flag; with no faults the per-message
        #: blocked/loss/latency-factor table walks are skipped entirely
        #: (they could only return the identity answers).
        self.active = False
        self.dead_nodes = set()
        #: Directional cuts: (src_node_id, dst_node_id).
        self.cut_node_links = set()
        #: Directional cuts: (src_region, dst_region).
        self.cut_region_links = set()
        #: Legacy symmetric region blackout.
        self.partitioned_regions = set()
        #: Directional loss probability per link.
        self.loss_node_links: Dict[Tuple[int, int], float] = {}
        self.loss_region_links: Dict[Tuple[str, str], float] = {}
        #: Directional latency multipliers per link.
        self.latency_node_links: Dict[Tuple[int, int], float] = {}
        self.latency_region_links: Dict[Tuple[str, str], float] = {}
        #: Per-node latency multiplier (gray node: slow in and out).
        self.slow_nodes: Dict[int, float] = {}
        #: node_id -> number of completed crash/restart cycles.
        self.restart_counts: Dict[int, int] = {}

    def _mutated(self) -> None:
        """Every mutator funnels through here: bump the generation and
        recompute the ``active`` flag."""
        self.generation += 1
        self.active = bool(
            self.dead_nodes or self.cut_node_links or self.cut_region_links
            or self.partitioned_regions or self.loss_node_links
            or self.loss_region_links or self.latency_node_links
            or self.latency_region_links or self.slow_nodes)

    # -- node faults --------------------------------------------------------

    def kill_node(self, node_id: int) -> None:
        self.dead_nodes.add(node_id)
        self._mutated()

    def revive_node(self, node_id: int) -> None:
        if node_id in self.dead_nodes:
            self.dead_nodes.discard(node_id)
            self.restart_counts[node_id] = (
                self.restart_counts.get(node_id, 0) + 1)
            self._mutated()

    def node_is_dead(self, node_id: int) -> bool:
        return node_id in self.dead_nodes

    def slow_node(self, node_id: int, factor: float) -> None:
        """Gray node: every message in or out takes ``factor`` x longer."""
        self.slow_nodes[node_id] = factor
        self._mutated()

    def restore_node_speed(self, node_id: int) -> None:
        self.slow_nodes.pop(node_id, None)
        self._mutated()

    # -- region partitions --------------------------------------------------

    def partition_region(self, region: str) -> None:
        """Cut the region off from all other regions (symmetric)."""
        self.partitioned_regions.add(region)
        self._mutated()

    def heal_region(self, region: str) -> None:
        self.partitioned_regions.discard(region)
        self._mutated()

    def clear_partitions(self) -> None:
        self.partitioned_regions.clear()
        self._mutated()

    # -- link faults --------------------------------------------------------

    @staticmethod
    def _links(src: LinkEnd, dst: LinkEnd,
               bidirectional: bool) -> List[Tuple[LinkEnd, LinkEnd]]:
        return [(src, dst), (dst, src)] if bidirectional else [(src, dst)]

    def cut_link(self, src: LinkEnd, dst: LinkEnd,
                 bidirectional: bool = False) -> None:
        """Cut src→dst traffic (node ids or region names)."""
        for a, b in self._links(src, dst, bidirectional):
            if isinstance(a, str):
                self.cut_region_links.add((a, b))
            else:
                self.cut_node_links.add((a, b))
        self._mutated()

    def heal_link(self, src: LinkEnd, dst: LinkEnd,
                  bidirectional: bool = False) -> None:
        for a, b in self._links(src, dst, bidirectional):
            if isinstance(a, str):
                self.cut_region_links.discard((a, b))
            else:
                self.cut_node_links.discard((a, b))
        self._mutated()

    def set_loss(self, src: LinkEnd, dst: LinkEnd, probability: float,
                 bidirectional: bool = True) -> None:
        """Drop src→dst messages with the given probability (0 clears)."""
        for a, b in self._links(src, dst, bidirectional):
            table = (self.loss_region_links if isinstance(a, str)
                     else self.loss_node_links)
            if probability <= 0.0:
                table.pop((a, b), None)
            else:
                table[(a, b)] = probability
        self._mutated()

    def set_latency_factor(self, src: LinkEnd, dst: LinkEnd, factor: float,
                           bidirectional: bool = True) -> None:
        """Multiply src→dst latency by ``factor`` (1.0 clears)."""
        for a, b in self._links(src, dst, bidirectional):
            table = (self.latency_region_links if isinstance(a, str)
                     else self.latency_node_links)
            if factor == 1.0:
                table.pop((a, b), None)
            else:
                table[(a, b)] = factor
        self._mutated()

    def heal_all_links(self) -> None:
        """Clear every link-level fault (cuts, loss, latency); leave
        dead nodes and legacy region partitions to their own heals."""
        self.cut_node_links.clear()
        self.cut_region_links.clear()
        self.loss_node_links.clear()
        self.loss_region_links.clear()
        self.latency_node_links.clear()
        self.latency_region_links.clear()
        self.slow_nodes.clear()
        self._mutated()

    # -- queries ------------------------------------------------------------

    def blocked(self, src, dst) -> bool:
        """Is src→dst traffic blocked (directional)?"""
        if src.node_id in self.dead_nodes or dst.node_id in self.dead_nodes:
            return True
        if (src.node_id, dst.node_id) in self.cut_node_links:
            return True
        src_region = src.locality.region
        dst_region = dst.locality.region
        if (src_region, dst_region) in self.cut_region_links:
            return True
        if src_region != dst_region:
            if src_region in self.partitioned_regions:
                return True
            if dst_region in self.partitioned_regions:
                return True
        return False

    def should_drop(self, src, dst) -> bool:
        """Sample packet loss for one src→dst message (seeded)."""
        p = self.loss_node_links.get((src.node_id, dst.node_id), 0.0)
        if p > 0.0 and self._rng.random() < p:
            return True
        p = self.loss_region_links.get(
            (src.locality.region, dst.locality.region), 0.0)
        return p > 0.0 and self._rng.random() < p

    def latency_factor(self, src, dst) -> float:
        factor = self.latency_node_links.get((src.node_id, dst.node_id), 1.0)
        factor *= self.latency_region_links.get(
            (src.locality.region, dst.locality.region), 1.0)
        factor *= self.slow_nodes.get(src.node_id, 1.0)
        factor *= self.slow_nodes.get(dst.node_id, 1.0)
        return factor


class LatencyModel:
    """Computes one-way latency between two localities."""

    def __init__(self,
                 rtt_matrix: Optional[Dict[Tuple[str, str], float]] = None,
                 same_zone_rtt: float = 0.5,
                 same_region_rtt: float = 1.0,
                 default_remote_rtt: float = 150.0,
                 jitter_fraction: float = 0.05,
                 seed: int = 0):
        self.rtt_matrix = dict(TABLE1_RTT_MS if rtt_matrix is None else rtt_matrix)
        self.same_zone_rtt = same_zone_rtt
        self.same_region_rtt = same_region_rtt
        self.default_remote_rtt = default_remote_rtt
        self.jitter_fraction = jitter_fraction
        self._rng = random.Random(seed)

    def rtt(self, region_a: str, zone_a: str, region_b: str, zone_b: str) -> float:
        """Nominal round-trip time between two (region, zone) localities."""
        if region_a == region_b:
            return self.same_zone_rtt if zone_a == zone_b else self.same_region_rtt
        return self.rtt_matrix.get((region_a, region_b), self.default_remote_rtt)

    def one_way(self, region_a: str, zone_a: str, region_b: str, zone_b: str) -> float:
        """One-way latency for a single message, with jitter applied."""
        base = self.rtt(region_a, zone_a, region_b, zone_b) / 2.0
        if self.jitter_fraction <= 0:
            return base
        return base * (1.0 + self._rng.uniform(0.0, self.jitter_fraction))


class Network:
    """Message fabric connecting cluster nodes.

    The primary primitive is :meth:`call`: an RPC that delivers a request
    to the destination after one-way latency, runs a handler coroutine
    there, and delivers the reply after another one-way latency.  Region
    partitions cause calls to reject with
    :class:`NetworkUnavailableError`.
    """

    #: Fixed per-message processing overhead (serialization, kernel, ...).
    PROCESSING_MS = 0.05
    #: How long a caller waits before concluding a lost packet killed the
    #: RPC (models TCP retransmission giving up, keeps futures settling).
    LOSS_TIMEOUT_MS = 200.0

    #: Raw-sample cap for the per-link hop-latency histograms (count /
    #: sum / min / max stay exact past it; see Histogram.max_samples).
    HOP_HISTOGRAM_SAMPLES = 8192

    def __init__(self, sim: Simulator, latency: Optional[LatencyModel] = None,
                 seed: int = 0):
        self.sim = sim
        self.latency = latency or LatencyModel()
        self.faults = FaultPlane(seed)
        #: Hot-path caches: the jitter fraction and RNG are fixed at
        #: construction (nothing mutates the latency model afterwards),
        #: and the prebound scheduler methods save an attribute lookup
        #: plus a bound-method allocation per message.
        self._jitter = self.latency.jitter_fraction
        self._jrand = self.latency._rng.random
        self._schedule = sim._schedule
        registry = sim.obs.registry
        #: Cached enabled flag: the per-message paths guard their
        #: counter/histogram calls on it instead of calling into the
        #: no-op registry tens of thousands of times per run.
        self._obs_on = sim.obs.enabled
        self._c_sent = registry.counter("net.messages_sent")
        self._c_dropped = registry.counter("net.messages_dropped")
        self.bytes_by_region_pair: Dict[Tuple[str, str], int] = {}
        #: Per-(src_node, dst_node) hop cache: (rtt/2 or None for
        #: loopback, per-link histogram, region pair, rpc process name).
        #: Localities and the RTT matrix are fixed for a cluster's
        #: lifetime, so entries never invalidate; only fault state is
        #: re-checked per message (via ``faults.active``).
        self._hop_cache: Dict[Tuple[int, int], tuple] = {}
        #: Callbacks fired with a node_id when that node restarts.
        self._restart_listeners: List[Callable[[int], None]] = []
        #: Clock-sync monitor (``repro.cluster.clocksync``), or None.
        #: Message-level senders (liveness heartbeats, Raft traffic)
        #: consult this one attribute to decide whether to piggyback a
        #: clock reading; None keeps the legacy paths untouched.
        self.clock_monitor = None

    @property
    def messages_sent(self) -> int:
        return int(self._c_sent.value)

    @property
    def messages_dropped(self) -> int:
        """Messages lost to partitions, dead nodes, or packet loss —
        includes `send`'s previously-silent drops."""
        return int(self._c_dropped.value)

    def _drop(self, reason: str) -> None:
        self._c_dropped.inc()
        self.sim.obs.registry.counter("net.drops", reason=reason).inc()

    def _record_hop(self, src, dst, latency_ms: float) -> None:
        """Per-hop latency attribution: one histogram per region link."""
        entry = self._hop_cache.get((src.node_id, dst.node_id))
        if entry is None:
            entry = self._make_hop_entry(src, dst)
        if entry[1] is not None:
            entry[1].observe(latency_ms)

    def _make_hop_entry(self, src, dst) -> tuple:
        """Build and cache the static per-link state consulted on every
        message: half-RTT, the hop histogram (resolved once instead of a
        label f-string + registry lookup per message; ``None`` with
        observability off), region pair, and the destination's RPC
        process name."""
        src_loc, dst_loc = src.locality, dst.locality
        if self._obs_on:
            hist = self.sim.obs.registry.histogram(
                "net.hop_ms", link=f"{src_loc.region}->{dst_loc.region}")
            if hist.max_samples is None:
                hist.max_samples = self.HOP_HISTOGRAM_SAMPLES
        else:
            hist = None
        half = (None if src.node_id == dst.node_id else
                self.latency.rtt(src_loc.region, src_loc.zone,
                                 dst_loc.region, dst_loc.zone) / 2.0)
        entry = (half, hist, (src_loc.region, dst_loc.region),
                 f"rpc@{dst.node_id}")
        self._hop_cache[(src.node_id, dst.node_id)] = entry
        return entry

    def _entry_delay(self, entry, src, dst) -> float:
        """One-way delay for one message, recorded on the link histogram.

        Zero-fault fast path: with ``faults.active`` False the only
        per-message work is the jitter draw — the latency-factor table
        walk is skipped because every factor is 1.0 (and ``x * 1.0`` is
        an IEEE identity, so the skipped multiply is byte-identical).
        The jitter draw itself uses the same RNG in the same order as
        :meth:`LatencyModel.one_way`, keeping runs deterministic across
        the fast and slow paths.
        """
        half = entry[0]
        if half is None:
            delay = 0.01
        elif self.faults.active:
            delay = self.one_way_latency(src, dst)
        else:
            jitter = self._jitter
            if jitter > 0.0:
                # Same draw as Random.uniform(0.0, jitter) — one
                # random() call, bit-identical value — minus the frame.
                delay = (half * (1.0 + self._jrand() * jitter)
                         + self.PROCESSING_MS)
            else:
                delay = half + self.PROCESSING_MS
        if entry[1] is not None:
            entry[1].observe(delay)
        return delay

    def _hop_delay(self, src, dst) -> float:
        entry = self._hop_cache.get((src.node_id, dst.node_id))
        if entry is None:
            entry = self._make_hop_entry(src, dst)
        return self._entry_delay(entry, src, dst)

    # -- failure injection ------------------------------------------------

    def partition_region(self, region: str) -> None:
        """Cut the given region off from all other regions."""
        self.faults.partition_region(region)

    def heal_region(self, region: str) -> None:
        self.faults.heal_region(region)

    def kill_node(self, node_id: int) -> None:
        self.faults.kill_node(node_id)

    def revive_node(self, node_id: int) -> None:
        self.faults.revive_node(node_id)

    def crash_node(self, node_id: int) -> None:
        """Crash (same as kill; named for crash-restart cycles)."""
        self.faults.kill_node(node_id)

    def restart_node(self, node_id: int) -> None:
        """Revive a crashed node and notify restart listeners.

        The node rejoins with all durable state (Raft logs, MVCC data)
        intact; listeners — wired by the Cluster — trigger Raft
        catch-up so the node re-acks and rejoins quorum."""
        self.faults.revive_node(node_id)
        for listener in self._restart_listeners:
            listener(node_id)

    def on_node_restart(self, listener: Callable[[int], None]) -> None:
        self._restart_listeners.append(listener)

    def node_is_dead(self, node_id: int) -> bool:
        return self.faults.node_is_dead(node_id)

    def reachable(self, src, dst) -> bool:
        """Public directional reachability check (fault plane view)."""
        return not self.faults.blocked(src, dst)

    def _reachable(self, src, dst) -> bool:
        return not self.faults.blocked(src, dst)

    def one_way_latency(self, src, dst) -> float:
        if src.node_id == dst.node_id:
            return 0.01
        base = self.latency.one_way(
            src.locality.region, src.locality.zone,
            dst.locality.region, dst.locality.zone) + self.PROCESSING_MS
        return base * self.faults.latency_factor(src, dst)

    def call(self, src, dst, handler: Callable[[], Generator],
             payload_size: int = 1, span=None) -> Future:
        """RPC from node ``src`` to node ``dst``.

        ``handler`` is a zero-argument callable returning a generator; it
        runs *on the destination* (in sim terms: after the request has
        been delivered).  The returned future resolves with the handler's
        return value after the reply propagates back, or rejects if the
        handler raises or the destination is unreachable.

        ``span``, when given, gets per-hop latency attribution tags
        (``req_ms`` / ``reply_ms``) so a trace shows how much of an RPC
        was wire time versus handler time.
        """
        fut = Future(self.sim)
        faults = self.faults
        if faults.active:
            # Fault checks only run when some fault is installed; with a
            # clean plane they could only return "deliver normally".
            if faults.blocked(src, dst):
                self._drop("unreachable")
                if span is not None:
                    span.annotate(net="unreachable")
                self.sim._call_soon(
                    fut.reject,
                    NetworkUnavailableError(f"node {dst.node_id} unreachable from {src.node_id}"))
                return fut
            if faults.should_drop(src, dst):
                # Request lost in flight: the caller only learns via timeout.
                self._drop("request_loss")
                if span is not None:
                    span.annotate(net="request_lost")
                self.sim.call_after(self.LOSS_TIMEOUT_MS, self._reject_if_pending,
                                    fut, RpcTimeoutError(
                                        f"request to node {dst.node_id} lost"))
                return fut
        if self._obs_on:
            self._c_sent.inc()
        entry = self._hop_cache.get((src.node_id, dst.node_id))
        if entry is None:
            entry = self._make_hop_entry(src, dst)
        pair = entry[2]
        self.bytes_by_region_pair[pair] = (
            self.bytes_by_region_pair.get(pair, 0) + payload_size)
        request_delay = self._entry_delay(entry, src, dst)
        if span is not None and self._obs_on:
            span.annotate(req_ms=round(request_delay, 3))
        self._schedule(request_delay, self._deliver_request,
                       src, dst, handler, fut, span, entry[3])
        return fut

    def _deliver_request(self, src, dst, handler, fut: Future, span,
                         rpc_name: str) -> None:
        faults = self.faults
        if faults.active and faults.blocked(src, dst):
            self._drop("died_in_flight")
            fut.reject(NetworkUnavailableError(
                f"node {dst.node_id} died in flight"))
            return
        process = self.sim.spawn(handler(), name=rpc_name)
        process.add_callback(
            lambda process: self._send_reply(process, src, dst, fut, span))

    def _send_reply(self, process: Process, src, dst, fut: Future,
                    span) -> None:
        # The handler ran on the destination; re-check the *reply*
        # direction — a partition or node death during handler
        # execution must not deliver the answer.  (The handler's
        # side effects, e.g. a laid intent, stand: that asymmetry
        # is what ambiguous-commit handling exists for.)
        faults = self.faults
        if faults.active:
            if faults.blocked(dst, src):
                self._drop("reply_blocked")
                self.sim._call_soon(fut.reject, NetworkUnavailableError(
                    f"reply from node {dst.node_id} undeliverable"))
                return
            if faults.should_drop(dst, src):
                self._drop("reply_loss")
                self.sim.call_after(
                    self.LOSS_TIMEOUT_MS, self._reject_if_pending, fut,
                    RpcTimeoutError(f"reply from node {dst.node_id} lost"))
                return
        if self._obs_on:
            self._c_sent.inc()
        entry = self._hop_cache.get((dst.node_id, src.node_id))
        if entry is None:
            entry = self._make_hop_entry(dst, src)
        reply_delay = self._entry_delay(entry, dst, src)
        if span is not None and self._obs_on:
            span.annotate(reply_ms=round(reply_delay, 3))
        error = process.error
        if error is not None:
            self._schedule(reply_delay, fut, None, error)
        else:
            self._schedule(reply_delay, fut, process._value)

    @staticmethod
    def _reject_if_pending(fut: Future, error: BaseException) -> None:
        if not fut.done:
            fut.reject(error)

    def send(self, src, dst, callback: Callable[..., None], *args) -> None:
        """One-way, fire-and-forget message (e.g. Raft appends).

        The delay computation is ``_entry_delay`` inlined: this is the
        single hottest network entry point (every Raft append, ack,
        commit update and heartbeat), and the two wrapper frames cost
        more than the work itself.  ``callback(*args)`` runs at the
        destination after one-way latency — passing args here instead
        of closing over them saves a closure allocation per message on
        the Raft paths.  The delivery event is recycled (it never
        escapes as a cancellation handle).
        """
        faults = self.faults
        if faults.active and (faults.blocked(src, dst)
                              or faults.should_drop(src, dst)):
            self._drop("send_blocked")
            return
        if self._obs_on:
            self._c_sent.inc()
        entry = self._hop_cache.get((src.node_id, dst.node_id))
        if entry is None:
            entry = self._make_hop_entry(src, dst)
        half = entry[0]
        if half is None:
            delay = 0.01
        elif faults.active:
            delay = self.one_way_latency(src, dst)
        else:
            jitter = self._jitter
            if jitter > 0.0:
                delay = (half * (1.0 + self._jrand() * jitter)
                         + self.PROCESSING_MS)
            else:
                delay = half + self.PROCESSING_MS
        hist = entry[1]
        if hist is not None:
            hist.observe(delay)
        self._schedule(delay, callback, *args)
