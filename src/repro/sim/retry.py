"""Seeded retry backoff shared by the DistSender and the transaction
coordinator.

Chaos runs showed that fixed ("randomless") backoff lets symmetric
contenders retry in lockstep forever; exponential backoff with seeded
jitter breaks the symmetry while keeping every run reproducible.
"""

from __future__ import annotations

import random
from typing import Optional

__all__ = ["ExponentialBackoff"]


class ExponentialBackoff:
    """Exponential backoff with decorrelating jitter.

    ``next_delay()`` returns ``min(max_ms, base_ms * multiplier**attempt)``
    scaled by a uniform jitter in ``[1 - jitter, 1]``, drawn from the
    supplied RNG so concurrent retriers sharing one seeded RNG stay
    deterministic as a population but never synchronize.
    """

    def __init__(self, rng: Optional[random.Random] = None,
                 base_ms: float = 1.0, max_ms: float = 500.0,
                 multiplier: float = 2.0, jitter: float = 0.5,
                 seed: int = 0):
        self._rng = rng if rng is not None else random.Random(seed)
        self.base_ms = base_ms
        self.max_ms = max_ms
        self.multiplier = multiplier
        self.jitter = jitter
        self.attempt = 0

    def next_delay(self) -> float:
        """Delay for the next retry; advances the attempt counter."""
        raw = self.base_ms * (self.multiplier ** self.attempt)
        self.attempt += 1
        capped = min(self.max_ms, raw)
        if self.jitter <= 0.0:
            return capped
        return capped * (1.0 - self.jitter * self._rng.random())

    def reset(self) -> None:
        self.attempt = 0
