"""Hybrid logical clocks (HLC), MVCC timestamps, and the clock model.

Every node owns an :class:`HLC` backed by a skewed view of simulated
time.  The database *assumes* that any two node clocks differ by at
most ``max_clock_offset`` — exactly the assumption CockroachDB makes of
NTP-disciplined clocks.  The :class:`ClockModel` draws each node a
fixed base offset within that bound, but — unlike the original
``SkewModel`` — the bound is a testable contract, not an axiom: the
chaos nemesis can violate it at runtime with piecewise drift rates,
step jumps (forward or backward), and frozen clocks, all per node.
The clock-safety subsystem (``repro.cluster.clocksync``) is what
detects and fences the resulting outliers.

Timestamps are (physical ms, logical counter) pairs with an additional
``synthetic`` bit.  Synthetic timestamps do not promise that any clock
has reached them; they are produced by future-time (GLOBAL-table)
writes and by lead closed timestamps.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from .core import Future, Simulator

__all__ = ["Timestamp", "HLC", "ClockModel", "SkewModel", "TS_ZERO", "TS_MAX"]


class Timestamp:
    """An MVCC timestamp: physical milliseconds plus a logical tiebreak.

    A hand-rolled ``__slots__`` class rather than a frozen dataclass:
    timestamps are minted on every HLC tick and compared on every MVCC
    read, and frozen-dataclass construction (``object.__setattr__`` per
    field) was a measurable share of the hot path.  Treat instances as
    immutable — they are hashed and shared.
    """

    __slots__ = ("physical", "logical", "synthetic")

    def __init__(self, physical: float, logical: int = 0,
                 synthetic: bool = False):
        self.physical = physical
        self.logical = logical
        self.synthetic = synthetic

    def key(self):
        return (self.physical, self.logical)

    # Comparisons are lexicographic on (physical, logical) — written out
    # field-by-field because these run on every MVCC read and Raft step,
    # and building two key() tuples per compare dominates the cost.

    def __lt__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical < other.physical
        return self.logical < other.logical

    def __le__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical < other.physical
        return self.logical <= other.logical

    def __gt__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical > other.physical
        return self.logical > other.logical

    def __ge__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical > other.physical
        return self.logical >= other.logical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.physical == other.physical
                and self.logical == other.logical)

    def __hash__(self) -> int:
        return hash(self.key())

    def next(self) -> "Timestamp":
        """The smallest timestamp strictly greater than this one."""
        return Timestamp(self.physical, self.logical + 1, self.synthetic)

    def prev(self) -> "Timestamp":
        if self.logical > 0:
            return Timestamp(self.physical, self.logical - 1, self.synthetic)
        return Timestamp(self.physical - 1e-6, 1 << 30, self.synthetic)

    def add(self, delta_ms: float) -> "Timestamp":
        """This timestamp shifted ``delta_ms`` into the future (synthetic)."""
        return Timestamp(self.physical + delta_ms, self.logical,
                         synthetic=self.synthetic or delta_ms > 0)

    def with_synthetic(self, synthetic: bool) -> "Timestamp":
        return Timestamp(self.physical, self.logical, synthetic)

    def __repr__(self) -> str:
        mark = "?" if self.synthetic else ""
        return f"{self.physical:.3f},{self.logical}{mark}"


TS_ZERO = Timestamp(0.0, 0)
TS_MAX = Timestamp(float("inf"), 0)


class _NodeClockFault:
    """Dynamic fault state for one node's clock (nemesis-injected)."""

    __slots__ = ("drift_rate", "drift_anchor", "drift_accum", "jump_ms",
                 "frozen_value")

    def __init__(self, anchor: float):
        self.drift_rate = 0.0       # clock-ms gained per sim-ms
        self.drift_anchor = anchor  # sim time the current rate started
        self.drift_accum = 0.0      # error accumulated by previous rates
        self.jump_ms = 0.0          # net step adjustment
        self.frozen_value = None    # frozen physical reading, or None


class ClockModel:
    """Per-node clock offsets within the tolerated bound, plus faults.

    Base offsets are drawn uniformly from ``[-max_offset/2, +max_offset/2]``
    scaled by ``skew_fraction`` so any pairwise difference is at most
    ``max_offset``, matching the paper's ``max_clock_offset`` contract
    (real deployments are usually well inside the bound).

    Offsets are precomputed eagerly at construction, in node-id order,
    so the assignment depends only on ``(seed, node_id)`` — never on
    which code path happens to query a node's clock first.  Ids beyond
    the preallocated bank extend it deterministically; non-positive ids
    (ad-hoc test clocks) get a stable per-id derived draw.

    On top of the static assignment sits the nemesis surface: per-node
    piecewise *drift* rates, step *jumps* (either direction), and
    *frozen* clocks, every one schedulable as a chaos ``FaultEvent``.
    Nodes without injected faults never touch the dynamic path, so
    legacy runs are byte-identical.
    """

    #: Offsets preallocated at construction (covers every built-in
    #: topology; larger clusters extend the bank deterministically).
    PREALLOC_NODES = 64

    def __init__(self, max_offset: float, seed: int = 0,
                 skew_fraction: float = 0.5,
                 sim: Optional[Simulator] = None):
        if not 0.0 <= skew_fraction <= 1.0:
            raise ValueError("skew_fraction must be within [0, 1]")
        self.max_offset = max_offset
        self.skew_fraction = skew_fraction
        self._seed = seed
        self._half = max_offset * skew_fraction / 2.0
        self._rng = random.Random(seed)
        self._bank = []
        self._fringe: Dict[int, float] = {}
        self._dynamic: Dict[int, _NodeClockFault] = {}
        self._sim = sim
        self._extend_bank(self.PREALLOC_NODES)

    # -- static offsets -----------------------------------------------------

    def _extend_bank(self, upto: int) -> None:
        bank = self._bank
        half = self._half
        while len(bank) < upto:
            bank.append(self._rng.uniform(-half, half) if half > 0.0 else 0.0)

    def offset_for(self, node_id: int) -> float:
        """The node's base (fault-free) offset from true simulated time."""
        if node_id >= 1:
            bank = self._bank
            if node_id > len(bank):
                self._extend_bank(node_id)
            return bank[node_id - 1]
        off = self._fringe.get(node_id)
        if off is None:
            rng = random.Random(self._seed * 1_000_003 + node_id * 7919)
            off = rng.uniform(-self._half, self._half) if self._half else 0.0
            self._fringe[node_id] = off
        return off

    # -- clock readings -----------------------------------------------------

    def physical_now(self, node_id: int, now: float) -> float:
        """The node's physical clock reading at sim time ``now``."""
        fault = self._dynamic.get(node_id)
        if fault is None:
            return now + self.offset_for(node_id)
        if fault.frozen_value is not None:
            return fault.frozen_value
        return (now + self.offset_for(node_id) + fault.jump_ms
                + fault.drift_accum
                + fault.drift_rate * (now - fault.drift_anchor))

    def effective_offset(self, node_id: int) -> float:
        """Current total offset (base + injected faults) from sim time."""
        now = self._now()
        return self.physical_now(node_id, now) - now

    def is_faulted(self, node_id: int) -> bool:
        return node_id in self._dynamic

    # -- nemesis surface ----------------------------------------------------

    def _now(self) -> float:
        if self._sim is None:
            raise RuntimeError(
                "ClockModel has no simulator bound; clock faults need one")
        return self._sim.now

    def _state(self, node_id: int) -> _NodeClockFault:
        fault = self._dynamic.get(node_id)
        if fault is None:
            fault = self._dynamic[node_id] = _NodeClockFault(self._now())
        return fault

    def set_drift(self, node_id: int, rate: float) -> None:
        """Start drifting: the clock gains ``rate`` ms per sim ms.

        Negative rates drift backward relative to true time.  Error
        accumulated under previous rates is retained (piecewise drift).
        """
        now = self._now()
        fault = self._state(node_id)
        fault.drift_accum += fault.drift_rate * (now - fault.drift_anchor)
        fault.drift_anchor = now
        fault.drift_rate = rate

    def clear_drift(self, node_id: int) -> None:
        """Stop drifting; error accumulated so far remains."""
        if node_id in self._dynamic:
            self.set_drift(node_id, 0.0)

    def jump(self, node_id: int, delta_ms: float) -> None:
        """Step the node's clock by ``delta_ms`` (either direction)."""
        fault = self._state(node_id)
        if fault.frozen_value is not None:
            fault.frozen_value += delta_ms
        else:
            fault.jump_ms += delta_ms

    def freeze(self, node_id: int) -> None:
        """Stop the node's clock dead at its current reading."""
        fault = self._state(node_id)
        if fault.frozen_value is None:
            fault.frozen_value = self.physical_now(node_id, self._now())

    def unfreeze(self, node_id: int) -> None:
        """Resume the clock *from the frozen value* — the node stays
        behind true time by however long it was frozen."""
        fault = self._dynamic.get(node_id)
        if fault is None or fault.frozen_value is None:
            return
        frozen = fault.frozen_value
        fault.frozen_value = None
        fault.jump_ms -= self.physical_now(node_id, self._now()) - frozen

    def heal(self, node_id: int) -> None:
        """Discard all injected faults (models an NTP step-resync back
        to the node's base offset, e.g. on process restart)."""
        self._dynamic.pop(node_id, None)

    def heal_all(self) -> None:
        self._dynamic.clear()


#: Backward-compatible name: the static skew model is the fault-free
#: subset of :class:`ClockModel`.
SkewModel = ClockModel


class HLC:
    """A hybrid logical clock owned by a single node.

    ``physical_now`` is the node's (possibly skewed or faulted) view of
    wall time; ``now()`` returns monotone HLC readings, and ``update``
    folds in timestamps observed on received messages, per the HLC
    algorithm.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 skew: Optional[ClockModel] = None):
        self.sim = sim
        self.node_id = node_id
        self._skew = skew
        if skew is not None and skew._sim is None:
            skew._sim = sim
        self._last = TS_ZERO

    @property
    def max_offset(self) -> float:
        return self._skew.max_offset if self._skew is not None else 0.0

    def physical_now(self) -> float:
        skew = self._skew
        if skew is None:
            return self.sim.now
        return skew.physical_now(self.node_id, self.sim.now)

    def now(self) -> Timestamp:
        physical = self.physical_now()
        if physical > self._last.physical:
            self._last = Timestamp(physical, 0)
        else:
            self._last = Timestamp(self._last.physical, self._last.logical + 1)
        return self._last

    def update(self, observed: Timestamp) -> Timestamp:
        """Advance the clock past a timestamp seen on an incoming message.

        Synthetic timestamps deliberately do *not* advance the clock:
        they carry no claim that real time has reached them.
        """
        if not observed.synthetic and observed > self._last:
            self._last = Timestamp(observed.physical, observed.logical)
        return self.now()

    def wait_until(self, target: Timestamp) -> Future:
        """Future resolving once this clock's physical time passes ``target``.

        This is *commit wait*: the caller blocks until every clock in the
        system is guaranteed to be within ``max_offset`` of ``target``.
        Re-armed on every wakeup rather than scheduled once — under a
        dynamic clock (backward jump, frozen clock, slow drift) a single
        fixed-delay wakeup could fire before the clock actually passes
        ``target``, silently shortening commit-wait.
        """
        fut = Future(self.sim)
        waited = 0.0

        def arm() -> None:
            nonlocal waited
            wait_ms = target.physical - self.physical_now()
            if wait_ms <= 1e-9:
                fut.resolve(waited)
                return
            waited += wait_ms
            self.sim.call_after(wait_ms, arm)

        arm()
        return fut
