"""Hybrid logical clocks (HLC) and MVCC timestamps.

Every node owns an :class:`HLC` backed by a skewed view of simulated
time.  The database guarantees that any two node clocks differ by at
most ``max_clock_offset`` — exactly the assumption CockroachDB makes of
NTP-disciplined clocks — and the skew model here enforces that bound by
construction.

Timestamps are (physical ms, logical counter) pairs with an additional
``synthetic`` bit.  Synthetic timestamps do not promise that any clock
has reached them; they are produced by future-time (GLOBAL-table)
writes and by lead closed timestamps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from .core import Future, Simulator

__all__ = ["Timestamp", "HLC", "SkewModel", "TS_ZERO", "TS_MAX"]


@dataclass(frozen=True, order=False)
class Timestamp:
    """An MVCC timestamp: physical milliseconds plus a logical tiebreak."""

    physical: float
    logical: int = 0
    synthetic: bool = False

    def key(self):
        return (self.physical, self.logical)

    # Comparisons are lexicographic on (physical, logical) — written out
    # field-by-field because these run on every MVCC read and Raft step,
    # and building two key() tuples per compare dominates the cost.

    def __lt__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical < other.physical
        return self.logical < other.logical

    def __le__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical < other.physical
        return self.logical <= other.logical

    def __gt__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical > other.physical
        return self.logical > other.logical

    def __ge__(self, other: "Timestamp") -> bool:
        if self.physical != other.physical:
            return self.physical > other.physical
        return self.logical >= other.logical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Timestamp):
            return NotImplemented
        return (self.physical == other.physical
                and self.logical == other.logical)

    def __hash__(self) -> int:
        return hash(self.key())

    def next(self) -> "Timestamp":
        """The smallest timestamp strictly greater than this one."""
        return Timestamp(self.physical, self.logical + 1, self.synthetic)

    def prev(self) -> "Timestamp":
        if self.logical > 0:
            return Timestamp(self.physical, self.logical - 1, self.synthetic)
        return Timestamp(self.physical - 1e-6, 1 << 30, self.synthetic)

    def add(self, delta_ms: float) -> "Timestamp":
        """This timestamp shifted ``delta_ms`` into the future (synthetic)."""
        return Timestamp(self.physical + delta_ms, self.logical,
                         synthetic=self.synthetic or delta_ms > 0)

    def with_synthetic(self, synthetic: bool) -> "Timestamp":
        return Timestamp(self.physical, self.logical, synthetic)

    def __repr__(self) -> str:
        mark = "?" if self.synthetic else ""
        return f"{self.physical:.3f},{self.logical}{mark}"


TS_ZERO = Timestamp(0.0, 0)
TS_MAX = Timestamp(float("inf"), 0)


class SkewModel:
    """Assigns each node a fixed clock offset within the tolerated bound.

    Offsets are drawn uniformly from ``[-max_offset/2, +max_offset/2]``
    so any pairwise difference is at most ``max_offset``, matching the
    paper's ``max_clock_offset`` contract.  ``skew_fraction`` scales how
    much of the allowance is actually used (real deployments are usually
    well inside the bound).
    """

    def __init__(self, max_offset: float, seed: int = 0, skew_fraction: float = 0.5):
        if not 0.0 <= skew_fraction <= 1.0:
            raise ValueError("skew_fraction must be within [0, 1]")
        self.max_offset = max_offset
        self.skew_fraction = skew_fraction
        self._rng = random.Random(seed)
        self._offsets = {}

    def offset_for(self, node_id: int) -> float:
        if node_id not in self._offsets:
            half = self.max_offset * self.skew_fraction / 2.0
            self._offsets[node_id] = self._rng.uniform(-half, half)
        return self._offsets[node_id]


class HLC:
    """A hybrid logical clock owned by a single node.

    ``physical_now`` is the node's (possibly skewed) view of wall time;
    ``now()`` returns monotone HLC readings, and ``update`` folds in
    timestamps observed on received messages, per the HLC algorithm.
    """

    def __init__(self, sim: Simulator, node_id: int,
                 skew: Optional[SkewModel] = None):
        self.sim = sim
        self.node_id = node_id
        self._skew = skew
        self._last = TS_ZERO

    @property
    def max_offset(self) -> float:
        return self._skew.max_offset if self._skew is not None else 0.0

    def physical_now(self) -> float:
        offset = self._skew.offset_for(self.node_id) if self._skew else 0.0
        return self.sim.now + offset

    def now(self) -> Timestamp:
        physical = self.physical_now()
        if physical > self._last.physical:
            self._last = Timestamp(physical, 0)
        else:
            self._last = Timestamp(self._last.physical, self._last.logical + 1)
        return self._last

    def update(self, observed: Timestamp) -> Timestamp:
        """Advance the clock past a timestamp seen on an incoming message.

        Synthetic timestamps deliberately do *not* advance the clock:
        they carry no claim that real time has reached them.
        """
        if not observed.synthetic and observed > self._last:
            self._last = Timestamp(observed.physical, observed.logical)
        return self.now()

    def wait_until(self, target: Timestamp) -> Future:
        """Future resolving once this clock's physical time passes ``target``.

        This is *commit wait*: the caller blocks until every clock in the
        system is guaranteed to be within ``max_offset`` of ``target``.
        """
        fut = Future(self.sim)
        wait_ms = target.physical - self.physical_now()
        if wait_ms <= 0:
            fut.resolve(0.0)
        else:
            self.sim.call_after(wait_ms, fut.resolve, wait_ms)
        return fut
