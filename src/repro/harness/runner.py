"""Generic experiment running: client pools over the simulation."""

from __future__ import annotations

from typing import Callable, Generator, List, Optional, Sequence

from ..cluster import standard_cluster
from ..metrics.histogram import LatencyRecorder
from ..sim.network import TABLE1_RTT_MS, synthetic_rtt_matrix
from ..sql.session import Engine, Session

__all__ = ["build_engine", "run_clients", "sessions_per_region"]


def build_engine(regions: Sequence[str], nodes_per_region: int = 3,
                 max_clock_offset: float = 250.0,
                 skew_fraction: float = 0.05,
                 jitter_fraction: float = 0.02,
                 rtt_matrix=None,
                 side_transport_interval_ms: float = 100.0,
                 closed_ts_lag_ms: Optional[float] = None,
                 seed: int = 0,
                 obs_enabled: bool = True,
                 trace_sample_every: int = 1,
                 raft_coalesce_ms: Optional[float] = None) -> Engine:
    """A cluster + engine with the evaluation's standard knobs.

    The default RTT matrix is the paper's Table 1; region names outside
    it (Fig 6's 26-region sweep) should pass
    :func:`~repro.sim.network.synthetic_rtt_matrix`.

    ``skew_fraction`` sets how much of ``max_clock_offset`` the *actual*
    clocks use: production NTP keeps real skew in the low milliseconds
    while the 250 ms offset is only a safety bound, so the evaluation
    default is 5%.  Raise it to stress uncertainty/commit-wait paths.
    """
    cluster = standard_cluster(
        regions, nodes_per_region=nodes_per_region,
        max_clock_offset=max_clock_offset, skew_fraction=skew_fraction,
        jitter_fraction=jitter_fraction, rtt_matrix=rtt_matrix, seed=seed,
        obs_enabled=obs_enabled, trace_sample_every=trace_sample_every,
        raft_coalesce_ms=raft_coalesce_ms)
    return Engine(cluster,
                  side_transport_interval_ms=side_transport_interval_ms,
                  closed_ts_lag_ms=closed_ts_lag_ms, seed=seed)


def sessions_per_region(engine: Engine, regions: Sequence[str],
                        clients_per_region: int,
                        database: str) -> List[Session]:
    """One session per simulated client, collocated with region nodes."""
    sessions = []
    for region in regions:
        for i in range(clients_per_region):
            session = engine.connect(region, index=i)
            session.database = engine.catalog.database(database)
            sessions.append(session)
    return sessions


def run_clients(engine: Engine,
                client_coroutines: Sequence[Callable[[], Generator]],
                recorder: LatencyRecorder,
                settle_ms: float = 1000.0) -> LatencyRecorder:
    """Run all client loops to completion in the shared simulation.

    ``settle_ms`` of simulated time passes first so closed timestamps
    reach followers before measurement starts (the paper's runs are
    long enough that warm-up is negligible; ours are short, so we warm
    up explicitly).
    """
    sim = engine.cluster.sim
    sim.run(until=sim.now + settle_ms)
    recorder.started_at = sim.now
    processes = [sim.spawn(make(), name=f"client-{i}")
                 for i, make in enumerate(client_coroutines)]
    for process in processes:
        sim.run_until_future(process)
    recorder.finished_at = sim.now
    return recorder
