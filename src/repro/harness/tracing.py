"""Traced workloads for the ``python -m repro trace`` CLI.

Runs a small, fully deterministic workload against a fresh engine and
returns it with the trace still attached (``engine.cluster.sim.obs``).
The movr workload is built to exercise every span-producing layer at
least once: a REGIONAL BY ROW write (local consensus), a GLOBAL-table
write (future-time closed timestamps, hence an explicit
``txn.commit_wait`` span), a local read, and a remote-region read of
the GLOBAL table (served from a nearby replica).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..sql.session import Engine
from ..workloads.movr import new_multi_region_schema_ddl
from .runner import build_engine

__all__ = ["DEFAULT_REGIONS", "run_traced_workload", "trace_roots"]

DEFAULT_REGIONS = ["us-east1", "us-west1", "europe-west2"]


def run_traced_workload(workload: str = "movr", seed: int = 0,
                        regions: Optional[Sequence[str]] = None) -> Engine:
    """Run ``workload`` to completion; returns the engine (with trace)."""
    regions = list(regions or DEFAULT_REGIONS)
    engine = build_engine(regions, seed=seed)
    if workload == "movr":
        _run_movr(engine, regions)
    elif workload == "kv":
        _run_kv(engine, regions)
    else:
        raise ValueError(f"unknown trace workload {workload!r} "
                         "(expected 'movr' or 'kv')")
    return engine


def _settle(engine: Engine, ms: float = 1000.0) -> None:
    """Let closed timestamps propagate before measuring."""
    sim = engine.cluster.sim
    sim.run(until=sim.now + ms)


def _run_movr(engine: Engine, regions: List[str]) -> None:
    home = engine.connect(regions[0])
    for stmt in new_multi_region_schema_ddl(regions):
        home.execute(stmt)
    home.execute("USE movr")
    _settle(engine)
    home.execute("INSERT INTO users (id, city, name) "
                 "VALUES (1, 'new york', 'alice')")
    # The GLOBAL-table write: its commit timestamp lands in the future
    # (paper §6.2.1), so the coordinator owes an explicit commit wait.
    home.execute("INSERT INTO promo_codes (code, description) "
                 "VALUES ('global_5pct', '5% off every ride')")
    home.execute("SELECT name FROM users WHERE id = 1")
    remote = engine.connect(regions[-1])
    remote.execute("USE movr")
    _settle(engine)
    remote.execute("SELECT description FROM promo_codes "
                   "WHERE code = 'global_5pct'")


def _run_kv(engine: Engine, regions: List[str]) -> None:
    """Minimal single-table workload: one write, one read per region."""
    others = ", ".join(f'"{r}"' for r in regions[1:])
    home = engine.connect(regions[0])
    home.execute(f'CREATE DATABASE kv PRIMARY REGION "{regions[0]}"'
                 + (f" REGIONS {others}" if others else ""))
    home.execute("CREATE TABLE kv (k int PRIMARY KEY, v string)")
    _settle(engine)
    home.execute("INSERT INTO kv (k, v) VALUES (1, 'one')")
    for index, region in enumerate(regions):
        session = engine.connect(region, index=1)
        session.execute("USE kv")
        session.execute("SELECT v FROM kv WHERE k = 1")


def trace_roots(engine: Engine) -> List:
    """The workload's root spans, in start order."""
    return list(engine.cluster.sim.obs.tracer.roots)
