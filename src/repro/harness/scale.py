"""The users-vs-p50/p99/goodput scale-curve experiment.

Sweeps the open-loop load multiplier with admission control on, plus a
congestion-collapse baseline (same offered load and store capacity,
protections off), and evaluates the graceful-degradation gates the
overload chaos scenarios assert:

* at the peak (4x) multiplier, goodput stays >= 80% of the measured
  capacity (the best goodput seen anywhere on the admission-on curve);
* admitted-request p99 stays within the request deadline;
* without admission the same load demonstrably collapses (goodput
  under 50% of capacity).

Everything is deterministic from the seed; ``SCALE_results.json`` at
the repo root holds the committed smoke baseline for CI's
``overload-smoke`` regression gate (mirroring ``BENCH_results.json``).
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional

from .openloop import OpenLoopConfig, run_openloop

__all__ = ["run_scale", "render_scale", "check_scale_regression",
           "DEFAULT_MULTIPLIERS", "QUICK_MULTIPLIERS", "RESULTS_PATH"]

DEFAULT_MULTIPLIERS = (0.5, 1.0, 2.0, 4.0)
QUICK_MULTIPLIERS = (1.0, 4.0)
#: Full-run / quick-run arrival windows.  The collapse baseline needs a
#: window long enough for the unprotected backlog to visibly swamp the
#: deadline (the backlog grows linearly in the overload duration).
FULL_DURATION_MS = 2000.0
QUICK_DURATION_MS = 1500.0

RESULTS_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "SCALE_results.json")

#: Graceful-degradation gate thresholds (asserted here and by the
#: overload chaos scenarios).
GOODPUT_FLOOR = 0.80
COLLAPSE_CEILING = 0.50

#: The diurnal curve point: 1x offered load modulated by a +/-60%
#: sinusoid with two "days" per arrival window, seeded per-region
#: phases (follow-the-sun peaks).  Admission must still hold p99
#: within the deadline through the regional peaks.
DIURNAL_AMPLITUDE = 0.6


def _point(multiplier: float, admission: bool, seed: int,
           duration_ms: float) -> Dict:
    result = run_openloop(OpenLoopConfig(
        load_multiplier=multiplier, admission=admission,
        duration_ms=duration_ms, seed=seed))
    return result.to_json()


def run_scale(seed: int = 0, quick: bool = False,
              multipliers: Optional[List[float]] = None) -> Dict:
    """Run the sweep; returns a JSON-ready document with gates."""
    if multipliers is None:
        multipliers = list(QUICK_MULTIPLIERS if quick
                           else DEFAULT_MULTIPLIERS)
    duration_ms = QUICK_DURATION_MS if quick else FULL_DURATION_MS
    config = OpenLoopConfig()
    curve = [_point(m, True, seed, duration_ms) for m in multipliers]
    peak_multiplier = multipliers[-1]
    no_admission = _point(peak_multiplier, False, seed, duration_ms)
    diurnal = run_openloop(OpenLoopConfig(
        load_multiplier=1.0, admission=True, duration_ms=duration_ms,
        seed=seed, diurnal_amplitude=DIURNAL_AMPLITUDE,
        diurnal_period_ms=duration_ms / 2.0)).to_json()

    capacity = max(point["goodput_per_s"] for point in curve)
    peak = curve[-1]
    goodput_ratio = (peak["goodput_per_s"] / capacity) if capacity else 0.0
    collapse_ratio = ((no_admission["goodput_per_s"] / capacity)
                      if capacity else 0.0)
    gates = {
        "capacity_per_s": capacity,
        "peak_multiplier": peak_multiplier,
        "goodput_ratio_at_peak": round(goodput_ratio, 3),
        "goodput_holds": goodput_ratio >= GOODPUT_FLOOR,
        "p99_at_peak_ms": peak["p99_ms"],
        "p99_bounded": peak["p99_ms"] <= config.deadline_ms,
        "no_admission_goodput_per_s": no_admission["goodput_per_s"],
        "collapse_ratio": round(collapse_ratio, 3),
        "collapses_without_admission": collapse_ratio < COLLAPSE_CEILING,
    }
    gates["ok"] = (gates["goodput_holds"] and gates["p99_bounded"]
                   and gates["collapses_without_admission"])
    return {
        "seed": seed,
        "quick": quick,
        "duration_ms": duration_ms,
        "deadline_ms": config.deadline_ms,
        "store_capacity_per_region_per_s": config.store_capacity_per_s,
        "admit_rate_per_region_per_s": config.admit_rate_per_s,
        "curve": curve,
        "no_admission": no_admission,
        "diurnal": {"amplitude": DIURNAL_AMPLITUDE,
                    "period_ms": duration_ms / 2.0,
                    "point": diurnal},
        "gates": gates,
    }


def render_scale(doc: Dict) -> str:
    """Human-readable table for the CLI."""
    lines = [
        f"scale sweep (seed={doc['seed']}, "
        f"duration={doc['duration_ms']:.0f}ms sim, "
        f"deadline={doc['deadline_ms']:.0f}ms)",
        f"  {'users':>7} {'mult':>5} {'adm':>4} {'offered':>8} "
        f"{'good':>7} {'rej':>6} {'shed':>5} {'goodput/s':>10} "
        f"{'p50ms':>8} {'p99ms':>8}",
    ]
    for point in doc["curve"] + [doc["no_admission"]]:
        lines.append(
            f"  {point['users']:>7} {point['multiplier']:>5.2g} "
            f"{'on' if point['admission'] else 'off':>4} "
            f"{point['offered']:>8} {point['good']:>7} "
            f"{point['rejected']:>6} {point['shed']:>5} "
            f"{point['goodput_per_s']:>10.1f} {point['p50_ms']:>8.2f} "
            f"{point['p99_ms']:>8.2f}")
    if "diurnal" in doc:
        point = doc["diurnal"]["point"]
        lines.append(
            f"  diurnal 1x (+/-{doc['diurnal']['amplitude']:.0%}, "
            f"period {doc['diurnal']['period_ms']:.0f}ms): "
            f"offered={point['offered']} good={point['good']} "
            f"goodput={point['goodput_per_s']:.1f}/s "
            f"p50={point['p50_ms']:.2f}ms p99={point['p99_ms']:.2f}ms")
    gates = doc["gates"]
    lines.append(
        f"  capacity={gates['capacity_per_s']:.1f}/s  "
        f"goodput@{gates['peak_multiplier']:g}x="
        f"{gates['goodput_ratio_at_peak']:.0%} "
        f"[{'pass' if gates['goodput_holds'] else 'FAIL'}]  "
        f"p99@peak={gates['p99_at_peak_ms']:.1f}ms "
        f"[{'pass' if gates['p99_bounded'] else 'FAIL'}]  "
        f"no-admission={gates['collapse_ratio']:.0%} of capacity "
        f"[{'collapses' if gates['collapses_without_admission'] else 'FAIL'}]")
    lines.append(f"  => {'OK' if gates['ok'] else 'GATE FAILURES'}")
    return "\n".join(lines)


def check_scale_regression(fresh: Dict, baseline: Dict,
                           tolerance: float = 0.25) -> List[str]:
    """Compare a fresh smoke run against the committed baseline.

    Mirrors the bench-smoke gate: goodput may not drop, nor p99 rise,
    by more than ``tolerance`` at any point on the curve.
    """
    failures: List[str] = []
    base_points = {(p["multiplier"], p["admission"]): p
                   for p in baseline.get("curve", [])}
    for point in fresh.get("curve", []):
        key = (point["multiplier"], point["admission"])
        base = base_points.get(key)
        if base is None:
            continue
        label = f"{key[0]:g}x/{'on' if key[1] else 'off'}"
        if point["goodput_per_s"] < base["goodput_per_s"] * (1 - tolerance):
            failures.append(
                f"goodput regression at {label}: "
                f"{point['goodput_per_s']:.1f}/s vs baseline "
                f"{base['goodput_per_s']:.1f}/s")
        if base["p99_ms"] > 0 and (
                point["p99_ms"] > base["p99_ms"] * (1 + tolerance)):
            failures.append(
                f"p99 regression at {label}: {point['p99_ms']:.2f}ms vs "
                f"baseline {base['p99_ms']:.2f}ms")
    if not fresh.get("gates", {}).get("ok", False):
        failures.append("graceful-degradation gates failed: "
                        + json.dumps(fresh.get("gates", {})))
    return failures
