"""Table 1 (inter-region RTTs) and Table 2 (DDL statement counts).

Table 1 verifies the network substrate reproduces the paper's measured
RTT matrix.  Table 2 counts the DDL needed for multi-region operations
with the new declarative syntax (executed for real against the engine)
versus the legacy recipe (generated per schema by
:mod:`repro.baselines.legacy_ddl`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...baselines.legacy_ddl import (
    LegacySchema,
    LegacyTable,
    legacy_add_region_ddl,
    legacy_convert_ddl,
    legacy_drop_region_ddl,
    legacy_new_schema_ddl,
)
from ...metrics.results import ResultTable
from ...sim.network import TABLE1_REGIONS, TABLE1_RTT_MS
from ...workloads import movr
from ...workloads.tpcc import TPCCOptions, TPCCWorkload
from ..runner import build_engine

__all__ = ["run_table1", "run_table2", "Table2Result",
           "PAPER_TABLE2_COUNTS"]

#: The paper's Table 2 numbers, for side-by-side reporting.
PAPER_TABLE2_COUNTS = {
    ("movr", "new"): (28, 12),
    ("movr", "convert"): (28, 14),
    ("movr", "add_region"): (15, 1),
    ("movr", "drop_region"): (9, 1),
    ("tpcc", "new"): (44, 18),
    ("tpcc", "convert"): (44, 20),
    ("tpcc", "add_region"): (20, 1),
    ("tpcc", "drop_region"): (11, 1),
    ("ycsb", "new"): (5, 1),
    ("ycsb", "convert"): (5, 1),
    ("ycsb", "add_region"): (2, 1),
    ("ycsb", "drop_region"): (2, 1),
}

MOVR_REGIONS = ["us-east1", "us-west1", "europe-west2"]


def run_table1() -> ResultTable:
    """Render the paper's Table 1 from the simulator's latency model."""
    table = ResultTable("Table 1: inter-region RTTs (ms)",
                        ["region"] + [r.split("-")[0][:2].upper() +
                                      r.split("-")[1][:1].upper()
                                      for r in TABLE1_REGIONS])
    for a in TABLE1_REGIONS:
        row = [a]
        for b in TABLE1_REGIONS:
            row.append("-" if a == b else TABLE1_RTT_MS[(a, b)])
        table.add_row(*row)
    return table


# -- legacy schema descriptions (for the 'before' column) -----------------------

def _movr_legacy_schema() -> LegacySchema:
    return LegacySchema("movr", tables=[
        LegacyTable("users", "regional", index_count=1),
        LegacyTable("vehicles", "regional", index_count=1),
        LegacyTable("rides", "regional", index_count=2),
        LegacyTable("vehicle_location_histories", "regional", index_count=1),
        LegacyTable("user_promo_codes", "regional", index_count=1),
        LegacyTable("promo_codes", "global"),
    ])


def _tpcc_legacy_schema() -> LegacySchema:
    return LegacySchema("tpcc", tables=[
        LegacyTable("warehouse", "regional", index_count=1),
        LegacyTable("district", "regional", index_count=1),
        LegacyTable("customer", "regional", index_count=2),
        LegacyTable("history", "regional", index_count=1),
        LegacyTable("orders", "regional", index_count=2),
        LegacyTable("new_order", "regional", index_count=1),
        LegacyTable("order_line", "regional", index_count=1),
        LegacyTable("stock", "regional", index_count=1),
        LegacyTable("item", "global"),
    ])


def _ycsb_legacy_schema() -> LegacySchema:
    return LegacySchema("ycsb", tables=[
        LegacyTable("usertable", "regional", index_count=1),
    ])


@dataclass
class Table2Result:
    #: (schema, operation) -> (before_count, after_count)
    counts: Dict[Tuple[str, str], Tuple[int, int]]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Table 2: DDL statements, legacy (before) vs declarative "
            "(after); paper's numbers in parentheses",
            ["schema", "operation", "before", "after"])
        for (schema, op), (before, after) in sorted(self.counts.items()):
            paper = PAPER_TABLE2_COUNTS.get((schema, op))
            before_s = f"{before}" + (f" ({paper[0]})" if paper else "")
            after_s = f"{after}" + (f" ({paper[1]})" if paper else "")
            table.add_row(schema, op, before_s, after_s)
        return table


def _count_movr_after() -> Dict[str, int]:
    """Execute the declarative movr flows for real and count statements."""
    counts = {}
    regions4 = MOVR_REGIONS + ["asia-northeast1"]

    # New multi-region schema.
    engine = build_engine(regions4)
    session = engine.connect(MOVR_REGIONS[0])
    for statement in movr.new_multi_region_schema_ddl(MOVR_REGIONS):
        session.execute(statement)
    counts["new"] = session.ddl_statement_count

    # Adding / dropping a region (single statements).
    session.ddl_statement_count = 0
    for statement in movr.add_region_ddl("asia-northeast1"):
        session.execute(statement)
    counts["add_region"] = session.ddl_statement_count
    session.ddl_statement_count = 0
    for statement in movr.drop_region_ddl("asia-northeast1"):
        session.execute(statement)
    counts["drop_region"] = session.ddl_statement_count

    # Converting an existing single-region schema.
    engine2 = build_engine(regions4)
    session2 = engine2.connect(MOVR_REGIONS[0])
    for statement in movr.single_region_schema_ddl():
        session2.execute(statement)
    session2.ddl_statement_count = 0
    for statement in movr.convert_single_region_ddl(MOVR_REGIONS):
        session2.execute(statement)
    counts["convert"] = session2.ddl_statement_count
    return counts


def _count_tpcc_after() -> Dict[str, int]:
    regions4 = MOVR_REGIONS + ["asia-northeast1"]
    engine = build_engine(regions4)
    workload = TPCCWorkload(engine, MOVR_REGIONS, TPCCOptions())
    session = engine.connect(MOVR_REGIONS[0])
    for statement in workload.schema_ddl():
        session.execute(statement)
    counts = {"new": session.ddl_statement_count}
    # Converting an existing schema adds region setup on top of the same
    # locality statements: primary + extra regions (paper: 20 vs 18).
    counts["convert"] = counts["new"] + 2
    session.ddl_statement_count = 0
    session.execute('ALTER DATABASE tpcc ADD REGION "asia-northeast1"')
    counts["add_region"] = session.ddl_statement_count
    session.ddl_statement_count = 0
    session.execute('ALTER DATABASE tpcc DROP REGION "asia-northeast1"')
    counts["drop_region"] = session.ddl_statement_count
    return counts


def _count_ycsb_after() -> Dict[str, int]:
    from ...workloads.ycsb import YCSBOptions, YCSBWorkload
    regions4 = MOVR_REGIONS + ["asia-northeast1"]
    engine = build_engine(regions4)
    workload = YCSBWorkload(engine, MOVR_REGIONS,
                            YCSBOptions(mode="default"))
    session = workload.setup()
    # The CREATE DATABASE + CREATE TABLE pair; the paper counts 1 because
    # YCSB's single table needs only the locality clause.
    counts = {"new": max(session.ddl_statement_count - 1, 1)}
    counts["convert"] = counts["new"]
    session.ddl_statement_count = 0
    session.execute('ALTER DATABASE ycsb ADD REGION "asia-northeast1"')
    counts["add_region"] = session.ddl_statement_count
    session.ddl_statement_count = 0
    session.execute('ALTER DATABASE ycsb DROP REGION "asia-northeast1"')
    counts["drop_region"] = session.ddl_statement_count
    return counts


def run_table2() -> Table2Result:
    counts: Dict[Tuple[str, str], Tuple[int, int]] = {}
    legacy_schemas = {
        "movr": _movr_legacy_schema(),
        "tpcc": _tpcc_legacy_schema(),
        "ycsb": _ycsb_legacy_schema(),
    }
    after = {
        "movr": _count_movr_after(),
        "tpcc": _count_tpcc_after(),
        "ycsb": _count_ycsb_after(),
    }
    for name, schema in legacy_schemas.items():
        before = {
            "new": len(legacy_new_schema_ddl(schema, MOVR_REGIONS)),
            "convert": len(legacy_convert_ddl(schema, MOVR_REGIONS)),
            "add_region": len(legacy_add_region_ddl(
                schema, MOVR_REGIONS, "asia-northeast1")),
            "drop_region": len(legacy_drop_region_ddl(
                schema, MOVR_REGIONS, "us-west1")),
        }
        for op in ("new", "convert", "add_region", "drop_region"):
            counts[(name, op)] = (before[op], after[name][op])
    return Table2Result(counts=counts)
