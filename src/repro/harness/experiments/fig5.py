"""Fig 5: read/write latency CDFs for GLOBAL tables vs baselines (§7.3).

Same workload as Fig 3 (YCSB-A, Zipf, 5 regions), comparing:

* **global_250 / global_50 / global_10** — GLOBAL tables at
  ``max_clock_offset`` ∈ {250, 50, 10} ms;
* **dup_idx** — the duplicate-indexes baseline (§7.3.1): per-region
  pinned covering indexes, reads local, writes fan out to all regions
  in one transaction;
* **regional_latest / regional_stale** — the Fig 3 REGIONAL configs.

The paper's headline: GLOBAL read tails are *bounded* by
``max_clock_offset`` while duplicate-index read/write tails are
unbounded under contention (writers queue behind each other's WAN
round trips).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Generator, List, Tuple

from ...baselines.duplicate_indexes import DuplicateIndexTable
from ...metrics.histogram import LatencyRecorder, Summary, cdf_points
from ...metrics.results import ResultTable
from ...sim.network import TABLE1_REGIONS
from ...workloads.zipf import ZipfGenerator
from ...workloads.ycsb import YCSBOptions, YCSBWorkload
from ..runner import build_engine, run_clients, sessions_per_region

__all__ = ["Fig5Result", "run_fig5", "FIG5_CONFIGS"]

FIG5_CONFIGS = ("global_250", "global_50", "global_10", "dup_idx",
                "regional_latest", "regional_stale")


@dataclass
class Fig5Result:
    recorders: Dict[str, LatencyRecorder]

    def summary(self, config: str, op: str) -> Summary:
        ops = ("read",) if op == "read" else ("update", "write")
        samples: List[float] = []
        recorder = self.recorders[config]
        for name in ops:
            samples.extend(recorder.samples(name))
        return Summary(samples)

    def cdf(self, config: str, op: str) -> List[Tuple[float, float]]:
        ops = ("read",) if op == "read" else ("update", "write")
        samples: List[float] = []
        recorder = self.recorders[config]
        for name in ops:
            samples.extend(recorder.samples(name))
        return cdf_points(samples)

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig 5: latency CDF summary (ms)",
            ["config", "op", "p50", "p90", "p99", "max"])
        for config in self.recorders:
            for op in ("read", "write"):
                summary = self.summary(config, op)
                if summary.count:
                    table.add_row(config, op, summary.p50, summary.p90,
                                  summary.p99, summary.max)
        return table


def _run_dup_idx(regions, clients_per_region: int, ops_per_client: int,
                 keys: int, max_clock_offset: float,
                 seed: int) -> LatencyRecorder:
    engine = build_engine(list(regions), max_clock_offset=max_clock_offset,
                          seed=seed)
    cluster = engine.cluster
    table = DuplicateIndexTable(cluster, engine.coordinator, list(regions),
                                side_transport_interval_ms=100.0)
    from ...sim.clock import Timestamp
    load_ts = Timestamp(-1000.0)
    table.bulk_load([((k,), f"value-{k}") for k in range(keys)], load_ts)
    recorder = LatencyRecorder(engine.cluster.sim.obs.registry)
    sim = cluster.sim

    def make_client(region: str, client_id: int):
        def client() -> Generator:
            gateway = cluster.gateway_for_region(region, client_id)
            sampler = ZipfGenerator(keys, seed=seed * 10007 + client_id)
            op_rng = random.Random(seed * 31 + client_id)
            for i in range(ops_per_client):
                key = (sampler.next(),)
                start = sim.now
                if op_rng.random() < 0.5:
                    yield from table.read_co(gateway, key)
                    recorder.record(("read", region), sim.now - start)
                else:
                    yield from table.write_co(gateway, key,
                                              f"v-{client_id}-{i}")
                    recorder.record(("write", region), sim.now - start)
            return None
        return client

    clients = [make_client(region, i)
               for region in regions
               for i in range(clients_per_region)]
    run_clients(engine, clients, recorder, settle_ms=1000.0)
    return recorder


def _run_sql_config(regions, mode: str, staleness_ms, clients_per_region,
                    ops_per_client, keys_per_region, max_clock_offset,
                    seed) -> LatencyRecorder:
    engine = build_engine(list(regions), max_clock_offset=max_clock_offset,
                          seed=seed)
    options = YCSBOptions(variant="A", mode=mode, distribution="zipf",
                          keys_per_region=keys_per_region,
                          read_staleness_ms=staleness_ms, seed=seed)
    workload = YCSBWorkload(engine, list(regions), options)
    workload.setup()
    workload.load()
    recorder = LatencyRecorder(engine.cluster.sim.obs.registry)
    sessions = sessions_per_region(engine, list(regions),
                                   clients_per_region, "ycsb")
    clients = [
        (lambda s=s, i=i: workload.client(s, recorder, ops_per_client, i))
        for i, s in enumerate(sessions)
    ]
    run_clients(engine, clients, recorder, settle_ms=2000.0)
    return recorder


def run_fig5(regions=TABLE1_REGIONS, clients_per_region: int = 3,
             ops_per_client: int = 40, keys_per_region: int = 200,
             seed: int = 0, configs=FIG5_CONFIGS) -> Fig5Result:
    regions = list(regions)
    total_keys = keys_per_region * len(regions)
    recorders: Dict[str, LatencyRecorder] = {}
    for config in configs:
        if config.startswith("global_"):
            offset = float(config.split("_")[1])
            recorders[config] = _run_sql_config(
                regions, "global", None, clients_per_region, ops_per_client,
                keys_per_region, offset, seed)
        elif config == "dup_idx":
            recorders[config] = _run_dup_idx(
                regions, clients_per_region, ops_per_client, total_keys,
                250.0, seed)
        elif config == "regional_latest":
            recorders[config] = _run_sql_config(
                regions, "regional_table", None, clients_per_region,
                ops_per_client, keys_per_region, 250.0, seed)
        elif config == "regional_stale":
            recorders[config] = _run_sql_config(
                regions, "regional_table", 30_000.0, clients_per_region,
                ops_per_client, keys_per_region, 250.0, seed)
        else:
            raise ValueError(f"unknown config {config!r}")
    return Fig5Result(recorders=recorders)
