"""Commit wait vs actual clock skew (clock-safety companion sweep).

GLOBAL-table writers commit-wait until their synthetic commit timestamp
falls below *their gateway's* clock (§6.2).  The wait is therefore only
as honest as that clock:

* a **lagging** gateway over-waits — pure latency cost, no risk;
* a **leading** gateway under-waits — it acks while the commit
  timestamp is still further in the future than an honest clock would
  allow, and only the uncertainty interval (``max_clock_offset``) keeps
  readers correct.  Beyond the contract, correctness is gone — which is
  exactly the line the clock-safety monitor fences at.

The sweep steps one gateway's clock across (and past) the tolerated
range and measures, for GLOBAL writes issued from that gateway:

* **write p50** — commit wait dominates, so latency falls as the clock
  leads (the "too good to be true" signal);
* **mean commit wait** — straight from the coordinator's stats;
* **mean ack lead** — ``commit_ts − wall`` at ack time: how far in the
  future the acked timestamp still is.  Honest readers are safe while
  this stays under ``max_clock_offset``; the sweep shows it crossing
  the bound exactly when the injected skew does.
"""

from __future__ import annotations

from ...metrics.histogram import Summary
from ...metrics.results import ResultTable
from ...sim.network import TABLE1_REGIONS
from .ablations import _global_engine

__all__ = ["run_clock_skew_sweep"]

PRIMARY = TABLE1_REGIONS[0]

#: Injected gateway clock offsets (ms).  The contract is +-250 ms;
#: +400 steps beyond it to show the ack lead leaving the safe range.
DEFAULT_OFFSETS_MS = (-200.0, -100.0, 0.0, 100.0, 200.0, 400.0)


def run_clock_skew_sweep(offsets_ms=DEFAULT_OFFSETS_MS, n_ops: int = 20,
                         seed: int = 0,
                         max_clock_offset: float = 250.0) -> ResultTable:
    """GLOBAL write latency / commit wait / ack lead vs gateway skew."""
    table = ResultTable(
        "Commit wait vs actual gateway clock skew (GLOBAL writes, "
        f"max_clock_offset={max_clock_offset:.0f}ms)",
        ["injected skew", "actual skew", "write p50", "mean commit wait",
         "mean ack lead", "within contract"])
    for offset in offsets_ms:
        engine, session, rng = _global_engine(
            max_clock_offset=max_clock_offset, seed=seed)
        cluster = engine.cluster
        sim = cluster.sim
        # Writer gateway != leaseholder: the lead target comes from the
        # (healthy) leaseholder clock while commit wait runs on the
        # skewed gateway clock — skewing the leaseholder itself would
        # shift both and cancel out.
        gateway = cluster.gateway_for_region(PRIMARY, index=1)
        # Step the gateway's clock on top of its base skew; the rest of
        # the cluster keeps its seeded in-contract offsets.
        cluster.clock.jump(gateway.node_id, offset)
        actual = cluster.clock.effective_offset(gateway.node_id)
        session.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
        sim.run(until=sim.now + 2000.0)

        waits_before = engine.coordinator.stats.commit_wait_ms_total
        count_before = engine.coordinator.stats.commit_waits
        latencies, ack_leads = [], []
        for i in range(n_ops):

            def txn_fn(txn, i=i):
                yield from txn.write(rng, ("skew",), f"w{i}")

            start = sim.now
            _result, commit_ts = sim.run_until_future(sim.spawn(
                engine.coordinator.run(gateway, txn_fn)))
            latencies.append(sim.now - start)
            ack_leads.append(commit_ts.physical - sim.now)
            sim.run(until=sim.now + 100.0)

        waited = (engine.coordinator.stats.commit_wait_ms_total
                  - waits_before)
        commits = max(1, engine.coordinator.stats.commit_waits
                      - count_before)
        mean_lead = sum(ack_leads) / len(ack_leads)
        table.add_row(
            f"{offset:+.0f}ms", f"{actual:+.1f}ms",
            Summary(latencies).p50, round(waited / commits, 1),
            round(mean_lead, 1),
            "yes" if mean_lead <= max_clock_offset else "NO (fence zone)")
    return table
