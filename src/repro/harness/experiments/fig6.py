"""Fig 6: multi-region TPC-C scalability (§7.4).

TPC-C with ``item`` GLOBAL and the other tables REGIONAL BY ROW
(region computed from the warehouse id), run at increasing region
counts.  The paper uses 4, 10, and 26 GCP regions and reports
throughput scaling linearly (>97% efficiency) plus per-region p50/p90
latencies showing requests stay in-region; it also checks PLACEMENT
RESTRICTED does not change latency.

Region counts beyond Table 1's five use a synthetic ring RTT matrix
spanning the same 20–280 ms envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...metrics.histogram import LatencyRecorder, Summary
from ...metrics.results import ResultTable
from ...sim.network import synthetic_rtt_matrix
from ...workloads.tpcc import TPCCOptions, TPCCWorkload
from ..runner import build_engine, run_clients, sessions_per_region

__all__ = ["Fig6Result", "run_fig6", "run_fig6_placement_comparison"]


def _region_names(count: int) -> List[str]:
    return [f"region-{i:02d}" for i in range(count)]


@dataclass
class Fig6Point:
    regions: int
    warehouses: int
    new_orders: int
    duration_ms: float
    recorder: LatencyRecorder

    @property
    def tpmc(self) -> float:
        """New-order transactions per simulated minute."""
        if self.duration_ms <= 0:
            return 0.0
        return self.new_orders / (self.duration_ms / 60_000.0)

    @property
    def tpmc_per_warehouse(self) -> float:
        return self.tpmc / self.warehouses if self.warehouses else 0.0

    def latency(self, region: str) -> Summary:
        return Summary(self.recorder.samples("new_order", region))


@dataclass
class Fig6Result:
    points: List[Fig6Point]

    def efficiency(self, point: Fig6Point) -> float:
        """Per-warehouse throughput relative to the smallest cluster."""
        base = self.points[0].tpmc_per_warehouse
        if base <= 0:
            return 0.0
        return point.tpmc_per_warehouse / base

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig 6: TPC-C scalability",
            ["regions", "warehouses", "tpmC", "tpmC/wh", "efficiency",
             "p50 range (ms)", "p90 range (ms)"])
        for point in self.points:
            p50s, p90s = [], []
            for label in point.recorder.labels():
                if label[0] != "new_order":
                    continue
                summary = Summary(point.recorder.samples(*label))
                if summary.count:
                    p50s.append(summary.p50)
                    p90s.append(summary.p90)
            table.add_row(
                point.regions, point.warehouses, point.tpmc,
                point.tpmc_per_warehouse,
                f"{self.efficiency(point) * 100:.0f}%",
                f"{min(p50s):.1f}-{max(p50s):.1f}" if p50s else "-",
                f"{min(p90s):.1f}-{max(p90s):.1f}" if p90s else "-")
        return table


def _run_point(n_regions: int, clients_per_region: int,
               txns_per_client: int, options: TPCCOptions,
               placement_restricted: bool, seed: int,
               side_transport_interval_ms: float = 1000.0) -> Fig6Point:
    regions = _region_names(n_regions)
    matrix = synthetic_rtt_matrix(regions, seed=seed)
    engine = build_engine(
        regions, rtt_matrix=matrix, seed=seed,
        side_transport_interval_ms=side_transport_interval_ms)
    workload = TPCCWorkload(engine, regions, options)
    session = workload.setup()
    if placement_restricted:
        session.execute(f"ALTER DATABASE {workload.database} "
                        f"PLACEMENT RESTRICTED")
    workload.load()
    recorder = LatencyRecorder(engine.cluster.sim.obs.registry)
    sessions = sessions_per_region(engine, regions, clients_per_region,
                                   workload.database)
    clients = [
        (lambda s=s, i=i: workload.client(s, recorder, txns_per_client, i))
        for i, s in enumerate(sessions)
    ]
    # Warm-up must cover the GLOBAL item table's closed-timestamp lead
    # (~side-transport interval + lead time) so follower reads serve.
    run_clients(engine, clients, recorder,
                settle_ms=3.0 * side_transport_interval_ms + 2000.0)
    new_orders = recorder.count("new_order")
    duration = (recorder.finished_at or 0) - (recorder.started_at or 0)
    return Fig6Point(
        regions=n_regions,
        warehouses=options.warehouses_per_region * n_regions,
        new_orders=new_orders, duration_ms=duration, recorder=recorder)


def run_fig6(region_counts=(4, 10, 26), clients_per_region: int = 2,
             txns_per_client: int = 12,
             options: Optional[TPCCOptions] = None,
             seed: int = 0) -> Fig6Result:
    options = options or TPCCOptions(think_time_ms=2000.0)
    points = [
        _run_point(n, clients_per_region, txns_per_client, options,
                   placement_restricted=False, seed=seed)
        for n in region_counts
    ]
    return Fig6Result(points=points)


def run_fig6_placement_comparison(n_regions: int = 10,
                                  clients_per_region: int = 2,
                                  txns_per_client: int = 12,
                                  seed: int = 0) -> Dict[str, Fig6Point]:
    """§7.4's check: PLACEMENT RESTRICTED vs DEFAULT latency at 10
    regions (non-voters everywhere should not hurt)."""
    options = TPCCOptions()
    return {
        "default": _run_point(n_regions, clients_per_region,
                              txns_per_client, options, False, seed),
        "restricted": _run_point(n_regions, clients_per_region,
                                 txns_per_client, options, True, seed),
    }
