"""Fig 4: REGIONAL BY ROW performance (§7.2).

Three sub-experiments on a 3-region cluster (us-east1, europe-west2,
asia-northeast1, as in the paper):

* **4a** — YCSB-B, 95%/50% locality of access; variants Unoptimized
  (no LOS), Default (LOS), Rehoming (LOS + auto-rehoming), Baseline
  (manual partitioning).
* **4b** — YCSB-D, 100% locality; INSERT latency for Computed vs
  Default vs Baseline (uniqueness-check omission, §4.1).
* **4c** — YCSB-B, 50% locality with all remote accesses targeting a
  shared key slice; auto-rehoming under contention for c ∈ {1, 2, 3}
  clients per region, against the non-rehoming Default.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from ...metrics.histogram import LatencyRecorder, Summary
from ...metrics.results import ResultTable
from ...workloads.ycsb import YCSBOptions, YCSBWorkload
from ..runner import build_engine, run_clients, sessions_per_region

__all__ = ["Fig4aResult", "run_fig4a", "Fig4bResult", "run_fig4b",
           "Fig4cResult", "run_fig4c", "FIG4_REGIONS"]

FIG4_REGIONS = ("us-east1", "europe-west2", "asia-northeast1")

_FIG4A_VARIANTS = ("unoptimized", "default", "rehoming", "baseline")


def _run_ycsb(regions, options: YCSBOptions, clients_per_region: int,
              ops_per_client: int, seed: int = 0, warmup_ops: int = 0,
              prehome_pools: bool = False) -> LatencyRecorder:
    engine = build_engine(list(regions), seed=seed)
    workload = YCSBWorkload(engine, list(regions), options)
    workload.setup()
    workload.load()
    recorder = LatencyRecorder(engine.cluster.sim.obs.registry)
    sessions = sessions_per_region(engine, list(regions),
                                   clients_per_region, "ycsb")
    clients = []
    for i, s in enumerate(sessions):
        prehome = (workload.remote_pool(s.region, i)
                   if prehome_pools else None)
        clients.append(
            lambda s=s, i=i, p=prehome: workload.client(
                s, recorder, ops_per_client, i, warmup_ops=warmup_ops,
                prehome_keys=p))
    run_clients(engine, clients, recorder, settle_ms=1000.0)
    return recorder


@dataclass
class Fig4aResult:
    #: (variant, locality) -> recorder
    recorders: Dict[Tuple[str, float], LatencyRecorder]

    def summary(self, variant: str, locality: float, op: str,
                local: bool) -> Summary:
        recorder = self.recorders[(variant, locality)]
        return recorder.summary(op, "local" if local else "remote")

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig 4a: LOS and auto-rehoming, YCSB-B (p50 ms)",
            ["variant", "locality", "read local", "read remote",
             "write local", "write remote"])
        for (variant, locality) in sorted(self.recorders):
            row = [variant, f"{int(locality * 100)}%"]
            for op in ("read", "update"):
                for local in (True, False):
                    summary = self.summary(variant, locality, op, local)
                    row.append(summary.p50 if summary.count else float("nan"))
            table.add_row(*row)
        return table


def run_fig4a(regions=FIG4_REGIONS, localities=(0.95, 0.5),
              variants=_FIG4A_VARIANTS, clients_per_region: int = 2,
              ops_per_client: int = 60, keys_per_region: int = 400,
              remote_pool_keys: int = 5, warmup_ops: int = 20,
              seed: int = 0) -> Fig4aResult:
    """Clients revisit small disjoint remote pools, as in the paper
    ("clients accessing a disjoint set of keys"), so auto-rehoming can
    amortize the one-time move."""
    recorders: Dict[Tuple[str, float], LatencyRecorder] = {}
    for variant in variants:
        for locality in localities:
            options = YCSBOptions(
                variant="B", mode=variant, distribution="uniform",
                keys_per_region=keys_per_region,
                locality_of_access=locality,
                remote_pool_keys=remote_pool_keys, seed=seed)
            recorders[(variant, locality)] = _run_ycsb(
                regions, options, clients_per_region, ops_per_client,
                seed=seed, warmup_ops=warmup_ops, prehome_pools=True)
    return Fig4aResult(recorders=recorders)


@dataclass
class Fig4bResult:
    recorders: Dict[str, LatencyRecorder]

    def insert_summary(self, variant: str, region: str = "") -> Summary:
        recorder = self.recorders[variant]
        if region:
            return Summary(recorder.samples("insert", "local", region))
        return recorder.summary("insert")

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig 4b: uniqueness checks on INSERT, YCSB-D (ms)",
            ["variant", "region", "p50", "p90", "p99"])
        for variant in sorted(self.recorders):
            recorder = self.recorders[variant]
            regions = sorted({label[2] for label in recorder.labels()
                              if label[0] == "insert"})
            for region in regions:
                summary = self.insert_summary(variant, region)
                if summary.count:
                    table.add_row(variant, region, summary.p50,
                                  summary.p90, summary.p99)
        return table


def run_fig4b(regions=FIG4_REGIONS,
              variants=("computed", "default", "baseline"),
              clients_per_region: int = 2, ops_per_client: int = 40,
              keys_per_region: int = 300, seed: int = 0) -> Fig4bResult:
    recorders: Dict[str, LatencyRecorder] = {}
    for variant in variants:
        options = YCSBOptions(
            variant="D", mode=variant, distribution="uniform",
            keys_per_region=keys_per_region, locality_of_access=1.0,
            seed=seed)
        recorders[variant] = _run_ycsb(
            regions, options, clients_per_region, ops_per_client, seed=seed)
    return Fig4bResult(recorders=recorders)


@dataclass
class Fig4cResult:
    #: label ('rehoming_c1', ..., 'default') -> recorder
    recorders: Dict[str, LatencyRecorder]

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig 4c: auto-rehoming under contention, YCSB-B 50% locality "
            "(remote-op ms)",
            ["config", "read p50", "read p90", "write p50", "write p90"])
        for config in sorted(self.recorders):
            recorder = self.recorders[config]
            reads = recorder.summary("read", "remote")
            writes = recorder.summary("update", "remote")
            table.add_row(config, reads.p50, reads.p90, writes.p50,
                          writes.p90)
        return table


def _run_contended(regions, mode: str, contenders: int,
                   ops_per_client: int, keys_per_region: int,
                   contended_keys: int, seed: int,
                   warmup_ops: int = 0) -> LatencyRecorder:
    """``contenders`` clients, one per region (starting after the slice's
    home region), all aiming their remote ops at one shared key slice."""
    regions = list(regions)
    engine = build_engine(regions, seed=seed)
    options = YCSBOptions(
        variant="B", mode=mode, distribution="uniform",
        keys_per_region=keys_per_region, locality_of_access=0.5,
        contended_keys=contended_keys, contended_region_index=0, seed=seed)
    workload = YCSBWorkload(engine, regions, options)
    workload.setup()
    workload.load()
    recorder = LatencyRecorder(engine.cluster.sim.obs.registry)
    clients = []
    for i in range(contenders):
        region = regions[(i + 1) % len(regions)]
        session = engine.connect(region, index=i)
        session.database = engine.catalog.database("ycsb")
        clients.append(
            lambda s=session, i=i: workload.client(
                s, recorder, ops_per_client, i, warmup_ops=warmup_ops,
                prehome_keys=workload.contended_pool()))
    run_clients(engine, clients, recorder, settle_ms=1000.0)
    return recorder


def run_fig4c(regions=FIG4_REGIONS, contending_clients=(1, 2, 3),
              ops_per_client: int = 60, keys_per_region: int = 400,
              contended_keys: int = 5, warmup_ops: int = 20,
              seed: int = 0) -> Fig4cResult:
    recorders: Dict[str, LatencyRecorder] = {}
    for c in contending_clients:
        recorders[f"rehoming_c{c}"] = _run_contended(
            regions, "rehoming", c, ops_per_client, keys_per_region,
            contended_keys, seed, warmup_ops=warmup_ops)
    recorders["default"] = _run_contended(
        regions, "default", max(contending_clients), ops_per_client,
        keys_per_region, contended_keys, seed, warmup_ops=warmup_ops)
    return Fig4cResult(recorders=recorders)
