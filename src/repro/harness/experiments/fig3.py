"""Fig 3: transaction latency for REGIONAL vs GLOBAL tables (§7.1).

Workload: YCSB-A (1:1 reads/writes), Zipf keys, 5 regions (Table 1
RTTs), us-east1 PRIMARY holding all leaseholders, ``max_clock_offset``
250 ms.  Three configurations:

* **Global** — fresh reads/writes on a GLOBAL table;
* **Regional (Latest)** — fresh reads/writes on REGIONAL BY TABLE;
* **Regional (Stale)** — bounded-staleness reads on the REGIONAL table
  (writes are identical to Regional (Latest) and not re-measured).

Reported separately for the PRIMARY region and non-PRIMARY regions,
matching the paper's box plots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ...metrics.histogram import LatencyRecorder, Summary
from ...metrics.results import ResultTable
from ...sim.network import TABLE1_REGIONS
from ...workloads.ycsb import YCSBOptions, YCSBWorkload
from ..runner import build_engine, run_clients, sessions_per_region

__all__ = ["Fig3Result", "run_fig3", "FIG3_CONFIGS"]

PRIMARY = TABLE1_REGIONS[0]

FIG3_CONFIGS = ("global", "regional_latest", "regional_stale")

_MODE_OF = {
    "global": "global",
    "regional_latest": "regional_table",
    "regional_stale": "regional_table",
}


@dataclass
class Fig3Result:
    #: config -> recorder with (op, local/remote, region) labels.
    recorders: Dict[str, LatencyRecorder]

    def summary(self, config: str, op: str, primary: bool) -> Summary:
        recorder = self.recorders[config]
        samples: List[float] = []
        for label in recorder.labels():
            if label[0] != op:
                continue
            in_primary = label[2] == PRIMARY
            if in_primary == primary:
                samples.extend(recorder.samples(*label))
        return Summary(samples)

    def table(self) -> ResultTable:
        table = ResultTable(
            "Fig 3: txn latency, REGIONAL vs GLOBAL (ms)",
            ["config", "op", "origin", "p50", "p90", "p99"])
        for config in FIG3_CONFIGS:
            ops = ("read",) if config == "regional_stale" else \
                ("read", "update")
            for op in ops:
                for primary in (True, False):
                    summary = self.summary(config, op, primary)
                    if summary.count == 0:
                        continue
                    table.add_row(config, op,
                                  "primary" if primary else "non-primary",
                                  summary.p50, summary.p90, summary.p99)
        return table


def run_fig3(regions=TABLE1_REGIONS, clients_per_region: int = 3,
             ops_per_client: int = 40, keys_per_region: int = 400,
             max_clock_offset: float = 250.0, seed: int = 0,
             configs=FIG3_CONFIGS) -> Fig3Result:
    """Run the Fig 3 experiment (scaled down from 2.5M requests)."""
    regions = list(regions)
    recorders: Dict[str, LatencyRecorder] = {}
    for config in configs:
        engine = build_engine(regions, max_clock_offset=max_clock_offset,
                              seed=seed)
        options = YCSBOptions(
            variant="A", mode=_MODE_OF[config], distribution="zipf",
            keys_per_region=keys_per_region,
            read_staleness_ms=(30_000.0 if config == "regional_stale"
                               else None),
            seed=seed)
        workload = YCSBWorkload(engine, regions, options)
        workload.setup()
        workload.load()
        recorder = LatencyRecorder(engine.cluster.sim.obs.registry)
        sessions = sessions_per_region(engine, regions, clients_per_region,
                                       "ycsb")
        clients = [
            (lambda s=s, i=i: workload.client(s, recorder, ops_per_client, i))
            for i, s in enumerate(sessions)
        ]
        run_clients(engine, clients, recorder, settle_ms=2000.0)
        recorders[config] = recorder
    return Fig3Result(recorders=recorders)
