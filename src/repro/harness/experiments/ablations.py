"""Ablations on the design choices DESIGN.md calls out.

1. **Closed-timestamp lead sizing** (§6.2.1): the leaseholder must close
   ``L_raft + L_replicate + max_clock_offset`` (+ transport slack) into
   the future.  Undersizing the lead makes follower reads miss (they
   redirect to the leaseholder, paying WAN RTTs); oversizing it only
   inflates writer commit wait.  The sweep scales the computed lead and
   measures both sides of the trade.
2. **Commit wait concurrent with lock release vs Spanner-style holding**
   (§6.2): contending GLOBAL writers either overlap their commit waits
   (CRDB) or serialize behind each other's locks (Spanner-style).
3. **Side-transport interval**: a slower closed-timestamp side transport
   forces a larger lead (stale broadcasts must still cover present
   time), directly inflating GLOBAL write latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ...kv.closedts import LeadPolicy
from ...kv.distsender import ReadRouting
from ...metrics.histogram import LatencyRecorder, Summary
from ...metrics.results import ResultTable
from ...sim.network import TABLE1_REGIONS
from ...sql.catalog import DEFAULT_PARTITION
from ...workloads.ycsb import YCSBOptions, YCSBWorkload
from ..runner import build_engine, run_clients, sessions_per_region

__all__ = ["run_lead_time_ablation", "run_commit_wait_ablation",
           "run_side_transport_ablation"]

PRIMARY = TABLE1_REGIONS[0]
REMOTE = "europe-west2"


def _global_engine(max_clock_offset=250.0, seed=0,
                   side_transport_interval_ms=100.0,
                   spanner_style=False):
    engine = build_engine(
        list(TABLE1_REGIONS), max_clock_offset=max_clock_offset, seed=seed,
        side_transport_interval_ms=side_transport_interval_ms,
        jitter_fraction=0.0)
    engine.coordinator.spanner_style_commit_wait = spanner_style
    session = engine.connect(PRIMARY)
    others = ", ".join(f'"{r}"' for r in TABLE1_REGIONS[1:])
    session.execute(f'CREATE DATABASE d PRIMARY REGION "{PRIMARY}" '
                    f"REGIONS {others}")
    session.execute("CREATE TABLE t (id int PRIMARY KEY, v string) "
                    "LOCALITY GLOBAL")
    table = engine.catalog.database("d").table("t")
    rng = table.primary_index.partitions[DEFAULT_PARTITION]
    return engine, session, rng


def run_lead_time_ablation(scales=(0.25, 0.5, 1.0, 2.0),
                           n_ops: int = 30, seed: int = 0) -> ResultTable:
    """Scale the computed lead time and measure remote fresh-read p50
    (follower hit vs leaseholder fallback) and write p50 (commit wait)."""
    table = ResultTable(
        "Ablation: closed-timestamp lead sizing (GLOBAL table)",
        ["lead scale", "lead ms", "remote read p50", "write p50",
         "follower reads served"])
    for scale in scales:
        engine, session, rng = _global_engine(seed=seed)
        computed = rng.policy.lead_ms
        rng.policy = LeadPolicy(lead_ms=computed * scale)
        session.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
        sim = engine.cluster.sim
        sim.run(until=sim.now + 3000.0)

        remote = engine.connect(REMOTE)
        remote.database = engine.catalog.database("d")
        read_latencies = []
        write_latencies = []
        served_locally = 0
        for i in range(n_ops):
            start = sim.now
            remote.execute("SELECT v FROM t WHERE id = 1")
            latency = sim.now - start
            read_latencies.append(latency)
            if latency < 10.0:
                served_locally += 1
            start = sim.now
            session.execute(f"UPDATE t SET v = 'v{i}' WHERE id = 1")
            write_latencies.append(sim.now - start)
            sim.run(until=sim.now + 120.0)
        table.add_row(f"{scale:.2f}x", computed * scale,
                      Summary(read_latencies).p50,
                      Summary(write_latencies).p50,
                      f"{served_locally}/{n_ops}")
    return table


def run_commit_wait_ablation(n_writers: int = 4,
                             seed: int = 0) -> ResultTable:
    """Contending GLOBAL writers: concurrent (CRDB) vs serialized
    (Spanner-style) commit waits.

    Uses blind single-key writes at the KV layer so the measurement
    isolates lock-hold duration (read-modify-write retries would add
    identical noise to both styles)."""
    table = ResultTable(
        "Ablation: commit wait concurrent with lock release",
        ["style", "slowest writer (ms)", "mean writer (ms)"])
    for style in ("crdb", "spanner"):
        engine, session, rng = _global_engine(
            seed=seed, spanner_style=(style == "spanner"))
        sim = engine.cluster.sim
        sim.run(until=sim.now + 2000.0)
        done_at: List[float] = []
        start = sim.now

        def writer(i):
            gateway = engine.cluster.gateway_for_region(PRIMARY,
                                                        index=i % 3)

            def txn_fn(txn):
                yield from txn.write(rng, ("contended",), f"w{i}")

            yield from engine.coordinator.run(gateway, txn_fn)
            done_at.append(sim.now - start)

        start = sim.now
        processes = [sim.spawn(writer(i)) for i in range(n_writers)]
        for process in processes:
            sim.run_until_future(process)
        table.add_row(style, max(done_at), sum(done_at) / len(done_at))
    return table


def run_side_transport_ablation(intervals=(50.0, 200.0, 1000.0),
                                seed: int = 0) -> ResultTable:
    """Side-transport interval vs GLOBAL write latency and remote read
    availability."""
    table = ResultTable(
        "Ablation: closed-timestamp side-transport interval",
        ["interval ms", "lead ms", "write p50", "remote read p50"])
    for interval in intervals:
        engine, session, rng = _global_engine(
            seed=seed, side_transport_interval_ms=interval)
        sim = engine.cluster.sim
        sim.run(until=sim.now + 3.0 * interval + 2000.0)
        remote = engine.connect(REMOTE)
        remote.database = engine.catalog.database("d")
        writes, reads = [], []
        session.execute("INSERT INTO t (id, v) VALUES (1, 'x')")
        sim.run(until=sim.now + 2.0 * interval + 1000.0)
        for i in range(20):
            start = sim.now
            session.execute(f"UPDATE t SET v = 'v{i}' WHERE id = 1")
            writes.append(sim.now - start)
            sim.run(until=sim.now + interval)
            start = sim.now
            remote.execute("SELECT v FROM t WHERE id = 1")
            reads.append(sim.now - start)
        table.add_row(interval, rng.policy.lead_ms, Summary(writes).p50,
                      Summary(reads).p50)
    return table
