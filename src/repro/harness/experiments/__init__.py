"""Per-figure/table experiment definitions (paper §7) and ablations."""

from .ablations import (
    run_commit_wait_ablation,
    run_lead_time_ablation,
    run_side_transport_ablation,
)
from .clockskew import run_clock_skew_sweep
from .fig3 import FIG3_CONFIGS, Fig3Result, run_fig3
from .fig4 import (
    FIG4_REGIONS,
    Fig4aResult,
    Fig4bResult,
    Fig4cResult,
    run_fig4a,
    run_fig4b,
    run_fig4c,
)
from .fig5 import FIG5_CONFIGS, Fig5Result, run_fig5
from .fig6 import Fig6Result, run_fig6, run_fig6_placement_comparison
from .tables import PAPER_TABLE2_COUNTS, Table2Result, run_table1, run_table2

__all__ = [
    "run_commit_wait_ablation",
    "run_lead_time_ablation",
    "run_side_transport_ablation",
    "run_clock_skew_sweep",
    "FIG3_CONFIGS",
    "Fig3Result",
    "run_fig3",
    "FIG4_REGIONS",
    "Fig4aResult",
    "Fig4bResult",
    "Fig4cResult",
    "run_fig4a",
    "run_fig4b",
    "run_fig4c",
    "FIG5_CONFIGS",
    "Fig5Result",
    "run_fig5",
    "Fig6Result",
    "run_fig6",
    "run_fig6_placement_comparison",
    "PAPER_TABLE2_COUNTS",
    "Table2Result",
    "run_table1",
    "run_table2",
]
