"""Head-to-head transaction-protocol experiment (``python -m repro
protocols``).

Both :class:`~repro.txn.protocol.TxnProtocol` backends — the CRDB-style
lease/intent pipeline and the epoch-batched OCC backend — run the
*same* seeded contended increment workload on the *same* cluster build
(identical RTT matrix, identical gateways, identical nemesis schedule),
so the numbers differ only where the protocols differ:

* **calm phase** — three regions of clients increment a small hot
  keyspace; the table reports p50/p99 commit-ack latency, the abort
  rate (retryable attempts per committed txn, with the OCC
  validation-abort share split out), and the wait breakdown —
  commit-wait milliseconds for CRDB vs epoch-wait milliseconds for
  epoch OCC;
* **faulted phase** — mid-run, the node holding the lease is
  symmetrically partitioned from every peer (the ``partition-
  leaseholder`` nemesis) and later healed, exercising lease failover
  under CRDB and ordering/apply RPC failover under epoch OCC.

Every run ends with a full-keyspace audit read: the sum of the final
counters must land inside the [committed, committed + indeterminate]
window or the suite fails regardless of goldens.

``PROTOCOLS_golden.json`` at the repo root pins per-(protocol, seed)
fingerprints for seeds {0, 1, 2}; ``python -m repro protocols``
re-runs and compares, so behavioural drift in either backend shows up
as a fingerprint mismatch.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
from typing import Dict, Generator, List, Optional

from ..chaos.scenarios import RETRYABLE
from ..cluster import standard_cluster
from ..errors import AmbiguousCommitError
from ..metrics.histogram import Summary
from ..placement import SurvivalGoal, provision_range, zone_config_for_home
from ..sim.core import all_of
from ..txn import TransactionCoordinator, resolve_protocol

__all__ = ["run_protocol_run", "run_protocols_suite", "render_protocols",
           "check_protocols_golden", "update_protocols_golden",
           "GOLDEN_PATH", "GOLDEN_SEEDS", "PROTOCOLS"]

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "PROTOCOLS_golden.json")
GOLDEN_SEEDS = (0, 1, 2)
PROTOCOLS = ("crdb", "epoch-occ")

REGIONS = ("us-east1", "europe-west2", "asia-northeast1")
HOME = "us-east1"

#: Small hot keyspace: three regions contending on 8 keys keeps the
#: OCC validation machinery honest without starving throughput.
KEYS = tuple(f"acct{i}" for i in range(8))

#: Phase boundaries (sim ms).  Clients issue ops until ISSUE_END_MS;
#: an op belongs to the phase its *start* falls in.
CALM_END_MS = 3000.0
PARTITION_AT_MS = 3250.0
HEAL_AT_MS = 4750.0
ISSUE_END_MS = 6000.0

CLIENTS_PER_REGION = 2
THINK_MS = (15.0, 45.0)


class _ProtocolRun:
    """One deterministic run of one backend under the shared schedule."""

    def __init__(self, seed: int, protocol: str):
        self.seed = seed
        self.protocol_name = protocol
        self.cluster = standard_cluster(list(REGIONS), seed=seed)
        self.sim = self.cluster.sim
        self.coord = TransactionCoordinator(
            self.cluster, protocol=resolve_protocol(protocol))
        config = zone_config_for_home(HOME, self.cluster.regions(),
                                      SurvivalGoal.REGION)
        # Chaos-grade hardening: bounded proposals and retransmission so
        # the partition phase fails cleanly instead of hanging.
        self.range = provision_range(
            self.cluster, config, name="protocols",
            side_transport_interval_ms=100.0,
            proposal_timeout_ms=1000.0,
            retransmit_interval_ms=150.0)
        ts = self.range.leaseholder_node.clock.now()
        self.range.bulk_ingest([(key, 0) for key in KEYS], ts)
        self.rng = random.Random((seed << 6) ^ 0x9E0C)
        #: Per-phase commit-ack latencies and outcome counters.
        self.latencies: Dict[str, List[float]] = {"calm": [], "faulted": []}
        self.outcomes: Dict[str, Dict[str, int]] = {
            "calm": {"ok": 0, "fail": 0, "indeterminate": 0},
            "faulted": {"ok": 0, "fail": 0, "indeterminate": 0}}
        self.op_log: List[str] = []

    # -- workload ----------------------------------------------------------

    def _phase_of(self, start_ms: float) -> str:
        return "calm" if start_ms < CALM_END_MS else "faulted"

    def _client(self, region: str, index: int) -> Generator:
        gateway = self.cluster.gateway_for_region(region, index)
        prng = random.Random(self.rng.random())
        op = 0
        while self.sim.now < ISSUE_END_MS:
            key = prng.choice(KEYS)
            start = self.sim.now

            def txn_fn(txn, key=key):
                value = yield from txn.read(self.range, key)
                yield from txn.write(self.range, key, value + 1)

            status = "ok"
            try:
                yield from self.coord.run(gateway, txn_fn, max_attempts=8)
            except AmbiguousCommitError:
                status = "indeterminate"
            except RETRYABLE:
                status = "fail"
            phase = self._phase_of(start)
            self.outcomes[phase][status] += 1
            if status == "ok":
                self.latencies[phase].append(self.sim.now - start)
            self.op_log.append(
                f"{region}/{index}/{op} {key} {start:.3f} "
                f"{self.sim.now:.3f} {status}")
            op += 1
            yield self.sim.sleep(prng.uniform(*THINK_MS))

    def _nemesis(self) -> Generator:
        """partition-leaseholder: sever the lease node symmetrically."""
        yield self.sim.sleep(PARTITION_AT_MS)
        faults = self.cluster.network.faults
        victim = self.range.leaseholder_node_id
        peers = [n.node_id for n in self.cluster.nodes
                 if n.node_id != victim]
        for peer in peers:
            faults.cut_link(victim, peer, bidirectional=True)
        yield self.sim.sleep(HEAL_AT_MS - PARTITION_AT_MS)
        for peer in peers:
            faults.heal_link(victim, peer, bidirectional=True)

    # -- the run -----------------------------------------------------------

    def run(self) -> Dict:
        clients = [self.sim.spawn(self._client(region, index),
                                  name=f"client-{region}-{index}")
                   for region in REGIONS
                   for index in range(CLIENTS_PER_REGION)]
        self.sim.spawn(self._nemesis(), name="nemesis")
        # Join the clients (not a fixed horizon): every op — including
        # retries outlasting the issue window — finishes before the
        # audit read, so the final counters are quiescent.
        self.sim.run_until_future(all_of(self.sim, clients))

        final = self._final_counters()
        return self._document(final)

    def _final_counters(self) -> Dict[str, int]:
        gateway = self.cluster.gateway_for_region(HOME, 0)

        def read_fn(txn):
            values = {}
            for key in KEYS:
                values[key] = (yield from txn.read(self.range, key))
            return values

        result, _ts = self.sim.run_until_future(self.sim.spawn(
            self.coord.run(gateway, read_fn, max_attempts=8)))
        return {key: int(result[key]) for key in KEYS}

    # -- reporting ---------------------------------------------------------

    def _phase_doc(self, phase: str) -> Dict:
        summary = Summary(self.latencies[phase])
        counts = self.outcomes[phase]
        return {
            "ops": counts["ok"] + counts["fail"] + counts["indeterminate"],
            "ok": counts["ok"], "fail": counts["fail"],
            "indeterminate": counts["indeterminate"],
            "p50_ms": round(summary.p50, 3) if summary.count else None,
            "p99_ms": round(summary.p99, 3) if summary.count else None,
            "max_ms": round(summary.max, 3) if summary.count else None,
        }

    def _document(self, final: Dict[str, int]) -> Dict:
        stats = self.coord.stats
        committed = sum(v["ok"] for v in self.outcomes.values())
        indeterminate = sum(v["indeterminate"]
                            for v in self.outcomes.values())
        total = sum(final.values())
        attempts = stats.begun
        aborted = stats.aborted_retries
        wait = {
            "kind": self.coord.protocol.wait_kind,
            "commit_waits": stats.commit_waits,
            "commit_wait_ms_total": round(stats.commit_wait_ms_total, 3),
            "epoch_waits": stats.epoch_waits,
            "epoch_wait_ms_total": round(stats.epoch_wait_ms_total, 3),
        }
        # Jepsen-style counter audit: every acknowledged increment must
        # be present exactly once; ambiguous ones may or may not be.
        audit_ok = committed <= total <= committed + indeterminate
        return {
            "protocol": self.protocol_name,
            "seed": self.seed,
            "phases": {p: self._phase_doc(p) for p in ("calm", "faulted")},
            "stats": {
                "begun": attempts,
                "committed": stats.committed,
                "aborted_retries": aborted,
                "validation_aborts": stats.validation_aborts,
                "ambiguous_commits": stats.ambiguous_commits,
                "abort_rate": round(aborted / attempts, 4) if attempts
                              else 0.0,
            },
            "wait": wait,
            "failovers": self.range.failovers,
            "final_total": total,
            "audit": {"committed": committed,
                      "indeterminate": indeterminate,
                      "ok": audit_ok},
            "ops_hash": hashlib.sha256(
                "\n".join(self.op_log).encode()).hexdigest()[:16],
            "ok": audit_ok,
        }


def run_protocol_run(seed: int, protocol: str) -> Dict:
    """One (protocol, seed) cell of the head-to-head matrix."""
    return _ProtocolRun(seed, protocol).run()


def fingerprint(doc: Dict) -> Dict:
    """The drift-sensitive subset pinned by the golden file."""
    return {
        "ops_hash": doc["ops_hash"],
        "final_total": doc["final_total"],
        "committed": doc["stats"]["committed"],
        "aborted_retries": doc["stats"]["aborted_retries"],
        "validation_aborts": doc["stats"]["validation_aborts"],
        "failovers": doc["failovers"],
    }


def run_protocols_suite(seeds) -> Dict:
    """Both backends over ``seeds``; ``ok`` is the AND of every audit."""
    runs: Dict[str, Dict] = {}
    ok = True
    for protocol in PROTOCOLS:
        for seed in seeds:
            doc = run_protocol_run(seed, protocol)
            runs[f"{protocol}/{seed}"] = doc
            ok = ok and doc["ok"]
    return {"ok": ok, "seeds": list(seeds), "runs": runs,
            "fingerprints": {name: fingerprint(doc)
                             for name, doc in runs.items()}}


def check_protocols_golden(suite: Dict,
                           path: str = GOLDEN_PATH) -> List[str]:
    """Compare the suite's fingerprints against the committed golden."""
    if not os.path.exists(path):
        return [f"no golden file at {path} "
                f"(run with --update-golden to create it)"]
    with open(path) as fh:
        golden = json.load(fh)
    failures: List[str] = []
    for name, fp in suite["fingerprints"].items():
        want = golden.get("fingerprints", {}).get(name)
        if want is None:
            failures.append(f"{name}: no golden entry")
            continue
        for field, value in fp.items():
            expected = want.get(field)
            if expected != value:
                failures.append(f"{name}: {field} = {value!r}, "
                                f"golden {expected!r}")
    return failures


def update_protocols_golden(suite: Dict, path: str = GOLDEN_PATH) -> None:
    """Promote this run's fingerprints, merging over existing entries."""
    golden = {"fingerprints": {}}
    if os.path.exists(path):
        with open(path) as fh:
            golden = json.load(fh)
    golden.setdefault("fingerprints", {}).update(suite["fingerprints"])
    with open(path, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_protocols(suite: Dict) -> str:
    """The fig3/fig5-style comparison table, one row per cell."""
    lines = ["protocol head-to-head (contended increments, "
             "partition-leaseholder nemesis mid-run)"]
    header = (f"  {'protocol':<10} {'seed':>4} {'phase':<8} "
              f"{'ops':>4} {'p50ms':>8} {'p99ms':>8} "
              f"{'abort%':>7} {'val':>4} {'wait-kind':<12} {'wait-ms':>9}")
    lines.append(header)
    for name, doc in sorted(suite["runs"].items()):
        stats, wait = doc["stats"], doc["wait"]
        abort_pct = 100.0 * stats["abort_rate"]
        wait_ms = (wait["commit_wait_ms_total"]
                   if wait["kind"] == "commit-wait"
                   else wait["epoch_wait_ms_total"])
        for phase in ("calm", "faulted"):
            pd = doc["phases"][phase]
            p50 = f"{pd['p50_ms']:.1f}" if pd["p50_ms"] is not None else "-"
            p99 = f"{pd['p99_ms']:.1f}" if pd["p99_ms"] is not None else "-"
            lines.append(
                f"  {doc['protocol']:<10} {doc['seed']:>4} {phase:<8} "
                f"{pd['ops']:>4} {p50:>8} {p99:>8} "
                f"{abort_pct:>6.1f}% {stats['validation_aborts']:>4} "
                f"{wait['kind']:<12} {wait_ms:>9.1f}")
        audit = doc["audit"]
        verdict = "ok" if doc["ok"] else "AUDIT FAILED"
        lines.append(
            f"    audit: final-total={doc['final_total']} "
            f"committed={audit['committed']} "
            f"indeterminate={audit['indeterminate']} "
            f"failovers={doc['failovers']} => {verdict}")
    return "\n".join(lines)
