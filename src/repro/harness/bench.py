"""Repeatable simulation-engine benchmarks (``python -m repro bench``).

Runs fixed-seed kv / movr / tpcc workloads against a fresh engine and
reports, per run:

* **wall_s** — host wall-clock seconds for the whole run (engine build,
  schema, load, clients);
* **events** and **events_per_sec** — simulated events dispatched by the
  kernel, and that count divided by wall-clock.  This is the headline
  engine-throughput number tracked across PRs in ``BENCH_results.json``;
* **sim_ms** / **ops** — simulated time covered and workload operations
  completed (sanity checks: optimization must never change these for a
  fixed seed and configuration);
* **peak_alloc_kb** / **alloc_count** — peak traced allocation and total
  allocation count from a separate ``tracemalloc`` pass (tracing skews
  timing, so the timed pass runs without it).

Everything is deterministic per seed: the same seed and scale always
simulate the same events, so events/sec differences between two
checkouts measure engine efficiency, not workload drift.
"""

from __future__ import annotations

import gc
import json
import time
import tracemalloc
from typing import Callable, Dict, List, Optional

from ..metrics.histogram import LatencyRecorder
from ..workloads.tpcc import TPCCOptions, TPCCWorkload
from ..workloads.ycsb import YCSBOptions, YCSBWorkload
from .runner import build_engine, run_clients, sessions_per_region

__all__ = ["BENCH_WORKLOADS", "BENCH_REGIONS", "run_bench", "bench_suite",
           "check_regression"]

BENCH_REGIONS = ["us-east1", "us-west1", "europe-west2"]
BENCH_WORKLOADS = ("kv", "movr", "tpcc")

#: Per-client recorded operations at scale 1.0.
_OPS = {"kv": 400, "movr": 150, "tpcc": 40}
_CLIENTS_PER_REGION = {"kv": 2, "movr": 2, "tpcc": 2}


def _run_kv(engine, regions: List[str], n_ops: int,
            recorder: LatencyRecorder, seed: int) -> None:
    options = YCSBOptions(variant="A", mode="default",
                          distribution="uniform", keys_per_region=200,
                          seed=seed)
    workload = YCSBWorkload(engine, regions, options)
    workload.setup()
    workload.load()
    sessions = sessions_per_region(engine, regions,
                                   _CLIENTS_PER_REGION["kv"], "ycsb")
    makers = [
        (lambda s=s, i=i: workload.client(s, recorder, n_ops, i))
        for i, s in enumerate(sessions)]
    run_clients(engine, makers, recorder)


def _run_movr(engine, regions: List[str], n_ops: int,
              recorder: LatencyRecorder, seed: int) -> None:
    from ..workloads.movr import new_multi_region_schema_ddl

    home = engine.connect(regions[0])
    for stmt in new_multi_region_schema_ddl(regions):
        home.execute(stmt)
    home.execute("USE movr")
    sim = engine.cluster.sim

    def client(session, client_id: int):
        base = client_id * 1_000_000
        for i in range(n_ops):
            uid = base + i
            start = sim.now
            yield from session.execute_co(
                f"INSERT INTO users (id, city, name) "
                f"VALUES ({uid}, 'city-{client_id}', 'user-{uid}')")
            recorder.record(("write", session.region), sim.now - start)
            start = sim.now
            yield from session.execute_co(
                f"SELECT name FROM users WHERE id = {uid}")
            recorder.record(("read", session.region), sim.now - start)

    sessions = []
    for region in regions:
        for i in range(_CLIENTS_PER_REGION["movr"]):
            session = engine.connect(region, index=i)
            session.database = engine.catalog.database("movr")
            sessions.append(session)
    makers = [(lambda s=s, i=i: client(s, i))
              for i, s in enumerate(sessions)]
    run_clients(engine, makers, recorder)


def _run_tpcc(engine, regions: List[str], n_txns: int,
              recorder: LatencyRecorder, seed: int) -> None:
    options = TPCCOptions(warehouses_per_region=2, districts_per_warehouse=3,
                          customers_per_district=5, items=25, seed=seed)
    workload = TPCCWorkload(engine, regions, options)
    workload.setup()
    workload.load()
    sessions = sessions_per_region(engine, regions,
                                   _CLIENTS_PER_REGION["tpcc"], "tpcc")
    makers = [
        (lambda s=s, i=i: workload.client(s, recorder, n_txns, i))
        for i, s in enumerate(sessions)]
    run_clients(engine, makers, recorder)


_RUNNERS: Dict[str, Callable] = {"kv": _run_kv, "movr": _run_movr,
                                 "tpcc": _run_tpcc}


def _execute(workload: str, seed: int, obs: str, scale: float,
             coalesce_ms: Optional[float]):
    """One complete benchmark run; returns (engine, recorder, n_ops)."""
    if workload not in _RUNNERS:
        raise ValueError(f"unknown bench workload {workload!r} "
                         f"(expected one of {BENCH_WORKLOADS})")
    if obs not in ("full", "off"):
        raise ValueError(f"obs must be 'full' or 'off', got {obs!r}")
    n_ops = max(1, int(round(_OPS[workload] * scale)))
    engine = build_engine(BENCH_REGIONS, seed=seed,
                          obs_enabled=(obs == "full"),
                          raft_coalesce_ms=coalesce_ms)
    # The recorder always uses a private registry so latency summaries
    # work identically with observability off.
    recorder = LatencyRecorder()
    _RUNNERS[workload](engine, BENCH_REGIONS, n_ops, recorder, seed)
    return engine, recorder, n_ops


def run_bench(workload: str, seed: int = 0, obs: str = "full",
              scale: float = 1.0, coalesce_ms: Optional[float] = None,
              measure_allocs: bool = False, repeats: int = 3) -> Dict:
    """Run one workload and return its result row.

    The timed pass runs ``repeats`` times and the *fastest* wall-clock
    wins (minimum-of-N: the simulated work is identical per repeat, so
    the minimum is the least-noise estimate of engine cost).  It runs
    without tracemalloc; when ``measure_allocs`` is set (``--alloc`` on
    the CLIs — off by default, since tracemalloc itself slows the run
    it instruments), one more identical pass runs under tracemalloc to
    report ``peak_alloc_kb``/``alloc_count`` (that pass's timing is
    discarded).
    """
    wall_s = None
    engine = recorder = n_ops = None
    for _ in range(max(1, repeats)):
        gc.collect()
        started = time.perf_counter()
        run_engine, run_recorder, run_ops = _execute(workload, seed, obs,
                                                     scale, coalesce_ms)
        elapsed = time.perf_counter() - started
        if wall_s is None or elapsed < wall_s:
            wall_s = elapsed
            engine, recorder, n_ops = run_engine, run_recorder, run_ops
    sim = engine.cluster.sim
    events = sim.events_processed
    row = {
        "workload": workload,
        "seed": seed,
        "obs": obs,
        "scale": scale,
        "repeats": max(1, repeats),
        "coalesce_ms": coalesce_ms,
        "ops": recorder.total_ops(),
        "sim_ms": round(sim.now, 3),
        "events": events,
        "wall_s": round(wall_s, 4),
        "events_per_sec": round(events / wall_s) if wall_s > 0 else 0,
        "latency_p50_ms": round(recorder.summary().p50, 3),
        "latency_p99_ms": round(recorder.summary().p99, 3),
    }
    if measure_allocs:
        gc.collect()
        tracemalloc.start()
        _execute(workload, seed, obs, scale, coalesce_ms)
        _current, peak = tracemalloc.get_traced_memory()
        alloc_count = sum(
            stat.count for stat in
            tracemalloc.take_snapshot().statistics("filename"))
        tracemalloc.stop()
        row["peak_alloc_kb"] = round(peak / 1024.0, 1)
        row["alloc_count"] = alloc_count
    return row


def bench_suite(workloads=BENCH_WORKLOADS, seed: int = 0,
                obs_modes=("full", "off"), scale: float = 1.0,
                measure_allocs: bool = False, repeats: int = 3,
                log: Optional[Callable[[str], None]] = None) -> List[Dict]:
    """Run the full suite; returns one row per (workload, obs mode)."""
    rows: List[Dict] = []
    for workload in workloads:
        for obs in obs_modes:
            row = run_bench(workload, seed=seed, obs=obs, scale=scale,
                            measure_allocs=measure_allocs, repeats=repeats)
            rows.append(row)
            if log is not None:
                log(f"  {workload:<6s} obs={obs:<4s} "
                    f"events={row['events']:>8d} "
                    f"wall={row['wall_s']:.3f}s "
                    f"events/s={row['events_per_sec']:,}")
    return rows


def check_regression(results: Dict, baseline: Dict,
                     tolerance: float = 0.25) -> List[str]:
    """Compare fresh smoke rows against the committed baseline.

    ``results``/``baseline`` are BENCH_results.json-style documents with
    a ``"smoke"`` list of rows.  Returns human-readable failures for any
    (workload, obs) pair whose events/sec dropped more than
    ``tolerance`` below the baseline.
    """
    failures: List[str] = []
    base_rows = {(r["workload"], r["obs"]): r
                 for r in baseline.get("smoke", [])}
    for row in results.get("smoke", []):
        key = (row["workload"], row["obs"])
        base = base_rows.get(key)
        if base is None or not base.get("events_per_sec"):
            continue
        ratio = row["events_per_sec"] / base["events_per_sec"]
        if ratio < 1.0 - tolerance:
            failures.append(
                f"{key[0]} (obs={key[1]}): {row['events_per_sec']:,} "
                f"events/s is {ratio:.2f}x of baseline "
                f"{base['events_per_sec']:,} (tolerance {tolerance:.0%})")
    return failures


def render_rows(rows: List[Dict]) -> str:
    header = (f"{'workload':<8s} {'obs':<5s} {'ops':>5s} {'events':>9s} "
              f"{'wall_s':>8s} {'events/s':>10s} {'peak_kb':>9s}")
    lines = [header, "-" * len(header)]
    for row in rows:
        peak = row.get("peak_alloc_kb")
        lines.append(
            f"{row['workload']:<8s} {row['obs']:<5s} {row['ops']:>5d} "
            f"{row['events']:>9d} {row['wall_s']:>8.3f} "
            f"{row['events_per_sec']:>10,d} "
            f"{peak if peak is not None else '-':>9}")
    return "\n".join(lines)


__all__.append("render_rows")
