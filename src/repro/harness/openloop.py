"""Open-loop load generation: Poisson arrivals, deadlines, goodput.

Closed-loop clients can never overload the system — each waits for its
previous request, so offered load self-throttles exactly when the
database slows down.  Real user populations don't: arrivals keep coming
at the offered rate regardless of how the backend feels (each arrival
is an independent simulated session).  This module models that with a
seeded Poisson arrival process per region (configurable skew), a
deadline per request, and goodput accounting: a request only counts if
it completes *within its deadline*.

Each arrival is one single-key KV transaction (read or write, Zipf key
choice) against the arrival region's REGIONAL range, run through the
full stack: gateway admission queue (when enabled), transaction
coordinator, DistSender, store work queues, Raft.  Everything is
deterministic from the config + seed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..admission import AdmissionConfig, Priority, install_admission
from ..cluster import standard_cluster
from ..errors import (AdmissionRejectedError, AmbiguousCommitError,
                      DeadlineExceededError, OverloadError,
                      TransactionRetryError)
from ..placement import SurvivalGoal, provision_range, zone_config_for_home
from ..txn import TransactionCoordinator
from ..workloads.zipf import ZipfGenerator

__all__ = ["OpenLoopConfig", "OpenLoopHarness", "OpenLoopResult",
           "RegionStats", "run_openloop"]

REGIONS = ("us-east1", "europe-west2", "asia-northeast1")


@dataclass
class OpenLoopConfig:
    """One open-loop saturation run (all knobs deterministic)."""

    regions: Tuple[str, ...] = REGIONS
    #: Offered arrival rate per region at multiplier 1.0 (requests/s).
    rate_per_s: float = 450.0
    #: Offered-load multiplier (the x-axis of the scale curves).
    load_multiplier: float = 1.0
    #: Per-region relative weight (hot-region skew); missing regions
    #: default to 1.0.
    region_weights: Dict[str, float] = field(default_factory=dict)
    #: Diurnal load: each region's instantaneous rate follows
    #: ``base * (1 + A * sin(2*pi*t/period + phase))`` with a seeded
    #: per-region phase, so regional peaks are offset the way
    #: follow-the-sun traffic is.  ``0.0`` disables the modulation and
    #: keeps the legacy arrival process byte-identical (no extra RNG
    #: draws).  Must lie in ``[0, 1]``.
    diurnal_amplitude: float = 0.0
    #: Period of the sinusoid (sim ms); one "day".
    diurnal_period_ms: float = 4000.0
    #: Arrival window (sim ms).
    duration_ms: float = 1200.0
    #: Per-request deadline; completions past it don't count as goodput.
    deadline_ms: float = 250.0
    write_fraction: float = 0.25
    keys_per_region: int = 200
    zipf_theta: float = 0.8
    #: Fraction of requests admitted at HIGH priority.
    high_priority_fraction: float = 0.1
    #: Enable the protections (gateway queue + deadline discipline +
    #: retry budget).  The store capacity model is always on, so
    #: ``admission=False`` is the congestion-collapse baseline: same
    #: capacity, no backpressure.
    admission: bool = True
    #: Gateway token-bucket rate per (tenant, region); sized just under
    #: the store capacity ``store_slots * 1000 / store_service_ms``.
    admit_rate_per_s: float = 900.0
    admit_burst: float = 16.0
    max_queue_depth: int = 64
    store_slots: int = 2
    store_service_ms: float = 2.0
    seed: int = 0
    obs_enabled: bool = True

    @property
    def store_capacity_per_s(self) -> float:
        """Leaseholder-store evaluation capacity (ops/s, per region)."""
        return self.store_slots * 1000.0 / self.store_service_ms

    def region_rate(self, region: str) -> float:
        weight = self.region_weights.get(region, 1.0)
        return self.rate_per_s * self.load_multiplier * weight


@dataclass
class RegionStats:
    """Per-region open-loop accounting."""

    offered: int = 0
    rejected: int = 0       # gateway queue-full rejections
    shed: int = 0           # deadline expiries (queue, store, or txn)
    overloaded: int = 0     # retry-budget exhaustion
    failed: int = 0         # other give-ups (retries exhausted, ambiguous)
    completed: int = 0      # transaction committed
    good: int = 0           # committed within the deadline
    latencies: List[float] = field(default_factory=list)

    def to_json(self) -> Dict[str, float]:
        lat = sorted(self.latencies)
        return {
            "offered": self.offered,
            "rejected": self.rejected,
            "shed": self.shed,
            "overloaded": self.overloaded,
            "failed": self.failed,
            "completed": self.completed,
            "good": self.good,
            "p50_ms": round(_pct(lat, 50.0), 3),
            "p99_ms": round(_pct(lat, 99.0), 3),
        }


def _pct(sorted_values: List[float], q: float) -> float:
    """Nearest-rank percentile on a pre-sorted list (0.0 when empty)."""
    if not sorted_values:
        return 0.0
    rank = max(0, min(len(sorted_values) - 1,
                      int(round(q / 100.0 * (len(sorted_values) - 1)))))
    return sorted_values[rank]


@dataclass
class OpenLoopResult:
    """Aggregated outcome of one open-loop run."""

    config: OpenLoopConfig
    per_region: Dict[str, RegionStats]
    duration_ms: float
    events: int
    sim_ms: float

    @property
    def offered(self) -> int:
        return sum(s.offered for s in self.per_region.values())

    @property
    def good(self) -> int:
        return sum(s.good for s in self.per_region.values())

    @property
    def completed(self) -> int:
        return sum(s.completed for s in self.per_region.values())

    @property
    def rejected(self) -> int:
        return sum(s.rejected for s in self.per_region.values())

    @property
    def shed(self) -> int:
        return sum(s.shed for s in self.per_region.values())

    @property
    def goodput_per_s(self) -> float:
        if self.duration_ms <= 0:
            return 0.0
        return self.good * 1000.0 / self.duration_ms

    def latencies(self) -> List[float]:
        out: List[float] = []
        for region in sorted(self.per_region):
            out.extend(self.per_region[region].latencies)
        out.sort()
        return out

    @property
    def p50_ms(self) -> float:
        return _pct(self.latencies(), 50.0)

    @property
    def p99_ms(self) -> float:
        return _pct(self.latencies(), 99.0)

    @property
    def users(self) -> int:
        """Simulated user population: offered rate x 1s think time."""
        return int(round(sum(self.config.region_rate(r)
                             for r in self.config.regions)))

    def fingerprint(self) -> Dict[str, float]:
        """Determinism fingerprint (golden-tested at several seeds)."""
        return {
            "events": self.events,
            "sim_ms": round(self.sim_ms, 3),
            "offered": self.offered,
            "good": self.good,
            "rejected": self.rejected,
            "shed": self.shed,
            "goodput_per_s": round(self.goodput_per_s, 3),
            "p50_ms": round(self.p50_ms, 3),
            "p99_ms": round(self.p99_ms, 3),
        }

    def to_json(self) -> Dict[str, object]:
        return {
            "users": self.users,
            "multiplier": self.config.load_multiplier,
            "admission": self.config.admission,
            "offered": self.offered,
            "good": self.good,
            "completed": self.completed,
            "rejected": self.rejected,
            "shed": self.shed,
            "goodput_per_s": round(self.goodput_per_s, 1),
            "p50_ms": round(self.p50_ms, 2),
            "p99_ms": round(self.p99_ms, 2),
            "regions": {region: stats.to_json()
                        for region, stats in sorted(self.per_region.items())},
        }


class OpenLoopHarness:
    """Cluster + per-region REGIONAL ranges + Poisson load.

    ``record_ops=True`` additionally keeps one plain-dict record per
    request (client/kind/key/start/end/status/error) for the chaos
    scenarios' Jepsen-style histories and timelines.
    """

    def __init__(self, config: Optional[OpenLoopConfig] = None,
                 record_ops: bool = False):
        self.config = config or OpenLoopConfig()
        self.record_ops = record_ops
        self.records: List[Dict[str, object]] = []
        cfg = self.config
        if not 0.0 <= cfg.diurnal_amplitude <= 1.0:
            raise ValueError("diurnal_amplitude must be within [0, 1]")
        if cfg.diurnal_amplitude > 0.0 and cfg.diurnal_period_ms <= 0.0:
            raise ValueError("diurnal_period_ms must be positive")
        self.cluster = standard_cluster(list(cfg.regions), seed=cfg.seed,
                                        obs_enabled=cfg.obs_enabled)
        self.coord = TransactionCoordinator(self.cluster)
        # The capacity model (store work queues) is always installed;
        # cfg.admission toggles only the protections on top of it.
        self.admission = install_admission(self.cluster, AdmissionConfig(
            rate_per_s=cfg.admit_rate_per_s,
            burst=cfg.admit_burst,
            max_queue_depth=cfg.max_queue_depth,
            store_slots=cfg.store_slots,
            store_service_ms=cfg.store_service_ms,
            gateway_enabled=cfg.admission,
            retry_budget_enabled=cfg.admission,
        ))
        # One ZONE-survivable REGIONAL range per region: local quorum,
        # so the leaseholder store — not WAN latency — is the capacity
        # bottleneck under saturation.
        self.ranges = {}
        for region in cfg.regions:
            zone_config = zone_config_for_home(
                region, self.cluster.regions(), SurvivalGoal.ZONE)
            self.ranges[region] = provision_range(
                self.cluster, zone_config, name=f"load-{region}",
                side_transport_interval_ms=100.0,
                proposal_timeout_ms=1000.0)
        self.stats = {region: RegionStats() for region in cfg.regions}
        self._rngs = {
            region: random.Random((cfg.seed << 6) ^ (0xA110 + index))
            for index, region in enumerate(cfg.regions)}
        self._zipfs = {
            region: ZipfGenerator(cfg.keys_per_region, theta=cfg.zipf_theta,
                                  seed=(cfg.seed << 4) ^ (0x21F + index))
            for index, region in enumerate(cfg.regions)}
        # Seeded per-region diurnal phases, drawn from dedicated RNGs so
        # the arrival/keying streams above are untouched either way.
        self._phases = {
            region: random.Random(
                (cfg.seed << 7) ^ (0xD1A1 + index)).uniform(0.0, 2 * math.pi)
            for index, region in enumerate(cfg.regions)}

    @property
    def sim(self):
        return self.cluster.sim

    # -- request lifecycle ---------------------------------------------------

    def _request(self, region: str, gateway_index: int):
        cfg = self.config
        stats = self.stats[region]
        rng = self._rngs[region]
        stats.offered += 1
        start_ms = self.sim.now
        deadline = (start_ms + cfg.deadline_ms) if cfg.admission else None
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        priority = (Priority.HIGH
                    if rng.random() < cfg.high_priority_fraction
                    else Priority.NORMAL)
        try:
            yield from self.admission.admit_co(
                "open", region, priority=priority, deadline_ms=deadline)
        except AdmissionRejectedError:
            stats.rejected += 1
            self._record(region, "admit", "-", start_ms, "rejected")
            return
        except DeadlineExceededError:
            stats.shed += 1
            self._record(region, "admit", "-", start_ms, "shed")
            return
        key = f"k{self._zipfs[region].next()}"
        is_write = rng.random() < cfg.write_fraction
        target = self.ranges[region]
        value = f"{region}:{stats.offered}"
        kind = "write" if is_write else "read"

        def txn_fn(txn):
            if is_write:
                yield from txn.write(target, key, value)
            else:
                yield from txn.read(target, key)

        try:
            yield from self.coord.run(gateway, txn_fn, max_attempts=5,
                                      label=f"open-{region}",
                                      deadline_ms=deadline, tenant="open")
        except DeadlineExceededError:
            stats.shed += 1
            self._record(region, kind, key, start_ms, "shed")
            return
        except OverloadError:
            stats.overloaded += 1
            self._record(region, kind, key, start_ms, "overloaded")
            return
        except (TransactionRetryError, AmbiguousCommitError):
            stats.failed += 1
            self._record(region, kind, key, start_ms, "failed")
            return
        latency = self.sim.now - start_ms
        stats.completed += 1
        stats.latencies.append(latency)
        if latency <= cfg.deadline_ms:
            stats.good += 1
            self._record(region, kind, key, start_ms, "good")
        else:
            self._record(region, kind, key, start_ms, "late")

    def _record(self, region: str, kind: str, key: str, start_ms: float,
                status: str) -> None:
        if not self.record_ops:
            return
        self.records.append({
            "client": f"open-{region}",
            "kind": kind,
            "key": key,
            "start_ms": start_ms,
            "end_ms": self.sim.now,
            "status": status,
        })

    def _arrivals(self, region: str, end_ms: float):
        cfg = self.config
        rng = self._rngs[region]
        rate = cfg.region_rate(region)
        if rate <= 0:
            return
        if cfg.diurnal_amplitude > 0.0:
            yield from self._diurnal_arrivals(region, end_ms, rate)
            return
        index = 0
        while True:
            gap_ms = rng.expovariate(rate) * 1000.0
            yield self.sim.sleep(gap_ms)
            if self.sim.now >= end_ms:
                return
            self.sim.spawn(self._request(region, index % 3),
                           name=f"open-{region}-{index}")
            index += 1

    def _diurnal_arrivals(self, region: str, end_ms: float, rate: float):
        """Inhomogeneous Poisson arrivals by thinning: draw gaps at the
        sinusoid's peak rate, then accept each arrival with probability
        ``instantaneous / peak``.  Exact for any bounded rate function,
        and deterministic from (config, seed)."""
        cfg = self.config
        sim = self.sim
        rng = self._rngs[region]
        phase = self._phases[region]
        omega = 2.0 * math.pi / cfg.diurnal_period_ms
        amplitude = cfg.diurnal_amplitude
        peak = rate * (1.0 + amplitude)
        start_ms = sim.now
        index = 0
        while True:
            gap_ms = rng.expovariate(peak) * 1000.0
            yield sim.sleep(gap_ms)
            now = sim.now
            if now >= end_ms:
                return
            instantaneous = rate * (
                1.0 + amplitude * math.sin(omega * (now - start_ms) + phase))
            if rng.random() * peak > instantaneous:
                continue  # thinned away: the trough of this region's day
            sim.spawn(self._request(region, index % 3),
                      name=f"open-{region}-{index}")
            index += 1

    def probe(self, region: str, deadline_ms: Optional[float] = None):
        """Coroutine: one fully-protected probe request; returns its
        latency in ms (used by chaos recovery checks)."""
        start_ms = self.sim.now
        gateway = self.cluster.gateway_for_region(region, 0)
        target = self.ranges[region]
        if deadline_ms is not None:
            deadline_ms = start_ms + deadline_ms
        yield from self.admission.admit_co("probe", region,
                                           priority=Priority.HIGH,
                                           deadline_ms=deadline_ms)

        def txn_fn(txn):
            yield from txn.read(target, "k0")

        yield from self.coord.run(gateway, txn_fn, max_attempts=5,
                                  label=f"probe-{region}",
                                  deadline_ms=deadline_ms, tenant="probe")
        return self.sim.now - start_ms

    # -- the run -------------------------------------------------------------

    def run(self, drain_ms: Optional[float] = None) -> OpenLoopResult:
        """Drive the arrival window plus a drain period; aggregate."""
        cfg = self.config
        sim = self.sim
        # Let replication/closed-timestamp machinery settle before load.
        sim.run(until=sim.now + 300.0)
        start_ms = sim.now
        end_ms = start_ms + cfg.duration_ms
        self.load_start_ms = start_ms
        self.load_end_ms = end_ms
        for region in cfg.regions:
            sim.spawn(self._arrivals(region, end_ms),
                      name=f"arrivals-{region}")
        drain = cfg.deadline_ms * 2.0 if drain_ms is None else drain_ms
        sim.run(until=end_ms + drain)
        return OpenLoopResult(
            config=cfg, per_region=self.stats,
            duration_ms=cfg.duration_ms,
            events=sim.events_processed, sim_ms=sim.now)


def run_openloop(config: Optional[OpenLoopConfig] = None) -> OpenLoopResult:
    return OpenLoopHarness(config).run()
