"""Experiment harness: engine builders, client pools, per-figure runs."""

from . import experiments
from .runner import build_engine, run_clients, sessions_per_region

__all__ = ["experiments", "build_engine", "run_clients",
           "sessions_per_region"]
