"""Experiment harness: engine builders, client pools, per-figure runs."""

from . import experiments
from .runner import build_engine, run_clients, sessions_per_region
from .tracing import run_traced_workload

__all__ = ["experiments", "build_engine", "run_clients",
           "sessions_per_region", "run_traced_workload"]
