"""Process-parallel sweep farm: seeds x scenarios x configs.

Every chaos, verify, and scale run is deterministic from its (kind,
scenario, seed, config) coordinates and shares nothing with its
siblings, so a sweep is embarrassingly parallel.  This module fans a
job list across ``multiprocessing`` workers and merges the results
into one deterministic document.

Design constraints, in priority order:

* **Determinism.**  The merged document is a pure function of the job
  list — byte-identical whether it ran on 1 worker or 16, regardless
  of completion order.  Jobs carry no wall-clock or pid fields, results
  come back in submission order (``Pool.map``), and the merge sorts on
  the job coordinates and serialises with ``sort_keys``.
* **Spawn safety.**  Workers use the ``spawn`` start method — each is
  a fresh interpreter that re-imports this module, so jobs must be
  picklable plain dicts and :func:`run_job` must be importable at
  module top level.  Nothing is inherited from the parent except the
  job payload (shared-nothing; fork would work too but spawn keeps us
  honest and portable).
* **Graceful sizing.**  ``workers=1`` (or a single job) runs inline in
  the parent with no pool at all — the sequential reference path the
  determinism guard compares against.
"""

from __future__ import annotations

import json
import multiprocessing
import os
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["run_job", "run_farm", "merge_results", "sweep_jobs",
           "run_sweep", "render_sweep", "dumps_sweep", "default_workers",
           "SWEEP_KINDS"]

SWEEP_KINDS = ("chaos", "verify", "scale", "bench")

#: The deterministic subset of a bench row: wall-clock-derived fields
#: (wall_s, events_per_sec) and allocation counters vary run to run
#: and are excluded from farm output by construction.
_BENCH_DETERMINISTIC_KEYS = ("workload", "seed", "obs", "scale", "ops",
                             "sim_ms", "events", "latency_p50_ms",
                             "latency_p99_ms")

#: Keys scrubbed from worker results before merging: anything here is
#: nondeterministic (wall clock, process identity) and would break the
#: byte-identical merge contract.
_NONDETERMINISTIC_KEYS = frozenset({"wall_s", "wall_seconds", "pid"})


def default_workers(requested: Optional[int] = None) -> int:
    """Worker count: the explicit request, else one per core (capped)."""
    if requested is not None and requested > 0:
        return requested
    return max(1, min(8, os.cpu_count() or 1))


def run_job(job: Dict[str, Any]) -> Dict[str, Any]:
    """Execute one sweep job; returns a JSON-ready record.

    Top-level (not nested, not a lambda) so spawn workers can unpickle
    a reference to it.  Imports are deferred so a worker only pays for
    the subsystem its job actually needs.
    """
    kind = job["kind"]
    # Optional transaction-protocol override (the protocol-matrix CLI
    # paths); absent for legacy jobs, keeping their records identical.
    protocol = job.get("protocol")
    if kind == "chaos":
        from ..chaos import run_scenario
        result = run_scenario(job["scenario"], job["seed"],
                              txn_protocol=protocol)
        record = {"kind": kind, "scenario": job["scenario"],
                  "seed": job["seed"], "ok": bool(result.ok),
                  "report": result.to_json()}
    elif kind == "verify":
        from ..verify import run_verify
        result = run_verify(job["scenario"], job["seed"],
                            protocol=protocol)
        record = {"kind": kind, "scenario": job["scenario"],
                  "seed": job["seed"], "ok": bool(result.ok),
                  "report": result.to_json()}
    elif kind == "scale":
        from .scale import run_scale
        doc = run_scale(seed=job["seed"], quick=job.get("quick", True))
        record = {"kind": kind, "scenario": "scale-curve",
                  "seed": job["seed"], "ok": bool(doc["gates"]["ok"]),
                  "report": doc}
    elif kind == "bench":
        from .bench import run_bench
        obs = job.get("obs", "full")
        row = run_bench(job["workload"], seed=job["seed"], obs=obs,
                        scale=job.get("scale", 0.25),
                        measure_allocs=False, repeats=1)
        record = {"kind": kind,
                  "scenario": f"{job['workload']}/obs-{obs}",
                  "seed": job["seed"], "ok": True,
                  "report": {key: row[key]
                             for key in _BENCH_DETERMINISTIC_KEYS}}
    else:
        raise ValueError(f"unknown sweep job kind {kind!r}")
    if protocol is not None:
        record["protocol"] = protocol
    return _scrub(record)


def _scrub(value):
    """Drop nondeterministic keys, recursively, from a result record."""
    if isinstance(value, dict):
        return {key: _scrub(item) for key, item in value.items()
                if key not in _NONDETERMINISTIC_KEYS}
    if isinstance(value, list):
        return [_scrub(item) for item in value]
    return value


def run_farm(jobs: Iterable[Dict[str, Any]],
             workers: Optional[int] = None) -> List[Dict[str, Any]]:
    """Run every job; results in submission order regardless of workers."""
    jobs = list(jobs)
    workers = min(default_workers(workers), max(1, len(jobs)))
    if workers <= 1 or len(jobs) <= 1:
        return [run_job(job) for job in jobs]
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(processes=workers) as pool:
        # chunksize=1: jobs are coarse (whole simulations), so let the
        # pool load-balance instead of pre-binning.
        return pool.map(run_job, jobs, chunksize=1)


def merge_results(results: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Fold per-job records into one deterministic sweep document.

    Runs are ordered by (kind, scenario, seed) — a canonical order
    independent of both submission and completion order.
    """
    runs = sorted(results, key=lambda r: (r["kind"], r["scenario"],
                                          r["seed"]))
    return {
        "ok": all(r["ok"] for r in runs),
        "total": len(runs),
        "failed": [f"{r['kind']}/{r['scenario']}/seed={r['seed']}"
                   for r in runs if not r["ok"]],
        "runs": runs,
    }


def sweep_jobs(kinds: Iterable[str], scenarios: Optional[List[str]],
               seeds: Iterable[int], quick: bool = True
               ) -> List[Dict[str, Any]]:
    """Expand kinds x scenarios x seeds into a farmable job list.

    ``scenarios=None`` means every scenario of each kind: the full
    chaos registry, the verify sweep set, and (for scale, which has no
    scenario axis) one curve per seed.
    """
    jobs: List[Dict[str, Any]] = []
    seeds = list(seeds)
    for kind in kinds:
        if kind == "chaos":
            from ..chaos import SCENARIOS
            names = (sorted(SCENARIOS) if scenarios is None
                     else [s for s in scenarios if s in SCENARIOS])
            jobs.extend({"kind": "chaos", "scenario": name, "seed": seed}
                        for name in names for seed in seeds)
        elif kind == "verify":
            from ..verify import VERIFY_SCENARIOS
            valid = set(VERIFY_SCENARIOS) | {"none"}
            names = (list(VERIFY_SCENARIOS) if scenarios is None
                     else [s for s in scenarios if s in valid])
            jobs.extend({"kind": "verify", "scenario": name, "seed": seed}
                        for name in names for seed in seeds)
        elif kind == "scale":
            jobs.extend({"kind": "scale", "seed": seed, "quick": quick}
                        for seed in seeds)
        elif kind == "bench":
            from .bench import BENCH_WORKLOADS
            names = (list(BENCH_WORKLOADS) if scenarios is None
                     else [s for s in scenarios if s in BENCH_WORKLOADS])
            jobs.extend({"kind": "bench", "workload": name, "seed": seed,
                         "obs": obs}
                        for name in names for seed in seeds
                        for obs in ("full", "off"))
        else:
            raise ValueError(f"unknown sweep kind {kind!r} "
                             f"(valid: {', '.join(SWEEP_KINDS)})")
    return jobs


def run_sweep(kinds: Iterable[str] = ("chaos", "verify"),
              scenarios: Optional[List[str]] = None,
              seeds: Iterable[int] = (0,),
              workers: Optional[int] = None,
              quick: bool = True) -> Dict[str, Any]:
    """Build, farm, and merge a sweep; the one-call API behind the CLI."""
    jobs = sweep_jobs(kinds, scenarios, seeds, quick=quick)
    return merge_results(run_farm(jobs, workers=workers))


def render_sweep(doc: Dict[str, Any]) -> str:
    """Compact per-run table plus the verdict line."""
    lines = [f"  {'kind':8s} {'scenario':28s} {'seed':>4}  verdict"]
    for run in doc["runs"]:
        lines.append(f"  {run['kind']:8s} {run['scenario']:28s} "
                     f"{run['seed']:>4}  "
                     f"{'ok' if run['ok'] else 'VIOLATION'}")
    lines.append(f"  => {doc['total']} runs, "
                 + ("all ok" if doc["ok"]
                    else f"{len(doc['failed'])} failed: "
                         + ", ".join(doc["failed"])))
    return "\n".join(lines)


def dumps_sweep(doc: Dict[str, Any]) -> str:
    """Canonical serialisation — the byte-identical merge artifact."""
    return json.dumps(doc, indent=2, sort_keys=True)
