"""The elastic-keyspace rebalancing experiment (``python -m repro
rebalance``).

One elastic span on a three-region cluster runs through three phases:

1. **warmup** — home-region clients touch the whole keyspace; the
   seeded key count exceeds the size-split threshold, so the
   rebalancing queue performs a *size split* almost immediately;
2. **hot** — remote-region clients hammer a narrow hot band; the
   per-range QPS tracker drives *load splits* of the hot range and a
   follow-the-workload *lease move* toward the loaded region;
3. **drain** — traffic stops; after the merge-patience window the cold
   ranges *merge* back until the span is a single range again.

Everything is deterministic from the seed.  ``REBALANCE_golden.json``
at the repo root pins per-seed fingerprints for seeds {0, 1, 2}; the
CLI re-runs and compares, so any behavioural drift in splits, merges,
routing, or rebalancing shows up as a fingerprint mismatch.  Each seed
is also run in **legacy** mode — the same workload against a plain
fixed range with elasticity disabled — whose fingerprint covers the
full metrics snapshot: the elastic machinery must leave fault-free
legacy runs byte-identical (no new instruments, no new events).
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import zlib
from typing import Dict, Generator, List, Optional, Tuple

from ..cluster import StoreLiveness, standard_cluster
from ..placement import RebalanceQueue, ZoneConfig, provision_range
from ..txn import TransactionCoordinator

__all__ = ["run_rebalance", "run_rebalance_suite", "render_rebalance",
           "check_rebalance_golden", "GOLDEN_PATH", "GOLDEN_SEEDS"]

GOLDEN_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "REBALANCE_golden.json")
GOLDEN_SEEDS = (0, 1, 2)

REGIONS = ("us-east1", "europe-west2", "asia-northeast1")
HOME = "us-east1"
HOT_REGION = "europe-west2"

#: Seeded keyspace and the hot band the remote clients hammer.
KEYS = tuple(f"u{i:03d}" for i in range(72))
HOT_KEYS = KEYS[:8]

#: Phase boundaries (sim ms).
WARMUP_END_MS = 2500.0
HOT_END_MS = 7500.0
DRAIN_END_MS = 12500.0

#: Queue thresholds sized so the workload demonstrably crosses them:
#: 72 seeded keys > 48 forces a size split; the hot band sustains well
#: over 12 QPS; everything is cold during the drain.
SPLIT_MAX_KEYS = 48
SPLIT_QPS = 12.0
MERGE_QPS = 2.0
MERGE_PATIENCE = 3


def _zone_config(regions) -> ZoneConfig:
    # One voter pinned home, the rest placed by diversity, and no lease
    # preference — leaving follow-the-workload free to move the lease.
    return ZoneConfig(num_replicas=3, num_voters=3,
                      constraints={HOME: 1})


class _RebalanceRun:
    """One deterministic run, elastic or legacy."""

    def __init__(self, seed: int, elastic: bool):
        self.seed = seed
        self.elastic = elastic
        self.cluster = standard_cluster(list(REGIONS), seed=seed)
        self.sim = self.cluster.sim
        self.coordinator = TransactionCoordinator(self.cluster)
        config = _zone_config(REGIONS)
        self.range = provision_range(
            self.cluster, config, name="elastic",
            side_transport_interval_ms=100.0,
            proposal_timeout_ms=1000.0, retransmit_interval_ms=150.0)
        ts = self.range.leaseholder_node.clock.now()
        if elastic:
            self.span = self.cluster.keyspace.adopt(self.range, name="kv")
            self.token = self.span
            self.liveness = StoreLiveness(self.cluster)
            self.queue = RebalanceQueue(
                self.cluster, self.liveness,
                split_max_keys=SPLIT_MAX_KEYS, split_qps=SPLIT_QPS,
                merge_qps=MERGE_QPS, merge_patience=MERGE_PATIENCE,
                lease_cooldown_ms=1500.0)
            self.queue.manage_span(self.span, config)
            self.queue.start()
        else:
            self.span = None
            self.queue = None
            self.token = self.range
        self.token.bulk_ingest([(key, 0) for key in KEYS], ts)
        self.committed = 0
        self.failed = 0
        self.samples: List[Dict] = []

    # -- clients -----------------------------------------------------------

    def _prng(self, tag: str) -> random.Random:
        return random.Random((self.seed << 20)
                             ^ zlib.crc32(tag.encode()))

    def _client(self, region: str, index: int, start_ms: float,
                end_ms: float, pick_key, think: Tuple[float, float]
                ) -> Generator:
        prng = self._prng(f"client/{region}/{index}")
        yield self.sim.sleep(start_ms)
        gateway = self.cluster.gateway_for_region(region, index)
        while self.sim.now < end_ms:
            key = pick_key(prng)

            def txn_fn(txn, key=key):
                value = yield from txn.read(self.token, key)
                yield from txn.write(self.token, key, (value or 0) + 1)
                return None

            try:
                yield from self.coordinator.run(gateway, txn_fn)
                self.committed += 1
            except Exception:
                self.failed += 1
            yield self.sim.sleep(prng.uniform(*think))
        return None

    # -- sampling ----------------------------------------------------------

    def _live_ranges(self) -> List:
        if self.span is not None:
            return [d.rng for d in self.span.descriptors]
        return [self.range]

    def _sample(self, label: str) -> Dict:
        ranges = []
        for rng in self._live_ranges():
            lease_node = rng.leaseholder_node_id
            lease_region = (
                self.cluster.node_by_id(lease_node).locality.region
                if lease_node is not None else None)
            entry = {
                "name": rng.name,
                "lease_region": lease_region,
                "keys": len(list(rng.leaseholder_replica.store.keys())),
            }
            if rng.descriptor is not None:
                entry["span"] = rng.descriptor.span_repr()
                entry["generation"] = rng.descriptor.generation
                entry["qps"] = round(rng.descriptor.load.qps(self.sim.now), 1)
            ranges.append(entry)
        return {"label": label, "t_ms": self.sim.now,
                "range_count": len(ranges), "ranges": ranges}

    def _probe(self, at_ms: float, label: str) -> Generator:
        yield self.sim.sleep(at_ms)
        self.samples.append(self._sample(label))
        return None

    # -- the run -----------------------------------------------------------

    def run(self) -> Dict:
        uniform = lambda prng: KEYS[prng.randrange(len(KEYS))]
        hot_weights = [1.0 / (i + 1) ** 1.5 for i in range(len(HOT_KEYS))]

        def hot(prng):
            return prng.choices(HOT_KEYS, weights=hot_weights, k=1)[0]

        for index in range(2):
            self.sim.spawn(
                self._client(HOME, index, 0.0, WARMUP_END_MS,
                             uniform, (10.0, 30.0)),
                name=f"warmup-{index}")
        for index in range(4):
            self.sim.spawn(
                self._client(HOT_REGION, index, WARMUP_END_MS, HOT_END_MS,
                             hot, (5.0, 15.0)),
                name=f"hot-{index}")
        self.sim.spawn(self._probe(WARMUP_END_MS - 100.0, "warmup"),
                       name="probe-warmup")
        self.sim.spawn(self._probe(HOT_END_MS - 100.0, "hot"),
                       name="probe-hot")
        self.sim.run(until=DRAIN_END_MS)
        if self.queue is not None:
            self.queue.stop()
        self.samples.append(self._sample("final"))
        return self._document()

    # -- reporting ---------------------------------------------------------

    def _final_snapshot(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rng in self._live_ranges():
            ts = rng.leaseholder_node.clock.now()
            for key, value in rng.leaseholder_replica.store.snapshot_at(
                    ts).items():
                out[key] = value
        return out

    def _counters(self) -> Dict[str, int]:
        registry = self.sim.obs.registry
        out: Dict[str, int] = {}
        for prefix in ("keyspace.", "rebalance.",
                       "distsender.range_cache_"):
            for inst in registry.instruments():
                if not inst.name.startswith(prefix):
                    continue
                label = ",".join(f"{k}={v}"
                                 for k, v in sorted(dict(inst.labels).items()))
                key = f"{inst.name}{{{label}}}" if label else inst.name
                out[key] = int(inst.value)
        return out

    def _metrics_hash(self) -> str:
        snapshot = self.sim.obs.registry.snapshot()
        blob = json.dumps(snapshot, sort_keys=True, default=str)
        return hashlib.sha256(blob.encode()).hexdigest()

    def _document(self) -> Dict:
        snapshot = self._final_snapshot()
        snapshot_hash = hashlib.sha256(
            json.dumps(sorted(snapshot.items()),
                       default=str).encode()).hexdigest()
        counters = self._counters()
        peak_ranges = max(s["range_count"] for s in self.samples)
        hot_sample = next((s for s in self.samples if s["label"] == "hot"),
                          None)
        lease_followed = bool(hot_sample) and any(
            r["lease_region"] == HOT_REGION for r in hot_sample["ranges"])
        doc = {
            "seed": self.seed,
            "mode": "elastic" if self.elastic else "legacy",
            "committed": self.committed,
            "failed": self.failed,
            "samples": self.samples,
            "counters": counters,
            "peak_ranges": peak_ranges,
            "final_ranges": self.samples[-1]["range_count"],
            "snapshot_sum": sum(snapshot.values()),
            "snapshot_hash": snapshot_hash,
            "metrics_hash": self._metrics_hash(),
        }
        conserved = doc["snapshot_sum"] == self.committed
        # The drain can only merge down to the size-split floor — one
        # range per split_max_keys of seeded data — or the merged range
        # would immediately re-split (hysteresis, not a failure).
        min_ranges = -(-len(KEYS) // SPLIT_MAX_KEYS)
        if self.elastic:
            split_triggers = {key: value for key, value in counters.items()
                              if key.startswith("rebalance.splits")}
            doc["gates"] = {
                "splits_happened": peak_ranges > min_ranges,
                "size_split": any("size" in key for key in split_triggers),
                "load_split": any("load" in key for key in split_triggers),
                "lease_followed_workload": lease_followed,
                "merged_back": (doc["final_ranges"] <= min_ranges
                                and doc["final_ranges"] < peak_ranges),
                "no_lost_increments": conserved,
                "no_failed_txns": self.failed == 0,
            }
        else:
            doc["gates"] = {
                "no_elastic_instruments": not counters,
                "keyspace_untouched": self.cluster._keyspace is None,
                "single_range": doc["final_ranges"] == 1,
                "no_lost_increments": conserved,
                "no_failed_txns": self.failed == 0,
            }
        doc["gates"]["ok"] = all(doc["gates"].values())
        return doc


def run_rebalance(seed: int = 0, elastic: bool = True) -> Dict:
    """One deterministic rebalance run; returns the JSON-ready doc."""
    return _RebalanceRun(seed, elastic).run()


def fingerprint(doc: Dict) -> Dict:
    """The golden-pinned summary of one run (order-stable)."""
    blob = json.dumps(doc, sort_keys=True, default=str)
    return {
        "mode": doc["mode"],
        "committed": doc["committed"],
        "failed": doc["failed"],
        "peak_ranges": doc["peak_ranges"],
        "final_ranges": doc["final_ranges"],
        "counters": doc["counters"],
        "snapshot_hash": doc["snapshot_hash"],
        "metrics_hash": doc["metrics_hash"],
        "doc_hash": hashlib.sha256(blob.encode()).hexdigest(),
    }


def run_rebalance_suite(seeds) -> Dict:
    """Elastic + legacy runs for each seed, with fingerprints."""
    runs = {}
    for seed in seeds:
        elastic = run_rebalance(seed, elastic=True)
        legacy = run_rebalance(seed, elastic=False)
        runs[str(seed)] = {
            "elastic": elastic,
            "legacy": legacy,
            "fingerprints": {
                "elastic": fingerprint(elastic),
                "legacy": fingerprint(legacy),
            },
        }
    ok = all(entry["elastic"]["gates"]["ok"]
             and entry["legacy"]["gates"]["ok"]
             for entry in runs.values())
    return {"ok": ok, "runs": runs}


def check_rebalance_golden(suite: Dict,
                           golden: Optional[Dict] = None) -> List[str]:
    """Compare a fresh suite's fingerprints against the committed golden."""
    if golden is None:
        if not os.path.exists(GOLDEN_PATH):
            return [f"no golden file at {GOLDEN_PATH} "
                    f"(run with --update-golden)"]
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
    failures: List[str] = []
    for seed, entry in sorted(suite["runs"].items()):
        pinned = golden.get("seeds", {}).get(seed)
        if pinned is None:
            failures.append(f"seed {seed}: no golden fingerprint")
            continue
        for mode in ("elastic", "legacy"):
            fresh = entry["fingerprints"][mode]
            want = pinned.get(mode, {})
            for field in sorted(set(fresh) | set(want)):
                if fresh.get(field) != want.get(field):
                    failures.append(
                        f"seed {seed} {mode}: {field} = "
                        f"{fresh.get(field)!r}, golden "
                        f"{want.get(field)!r}")
    return failures


def update_rebalance_golden(suite: Dict) -> None:
    golden = {"seeds": {}}
    if os.path.exists(GOLDEN_PATH):
        with open(GOLDEN_PATH) as fh:
            golden = json.load(fh)
        golden.setdefault("seeds", {})
    for seed, entry in suite["runs"].items():
        golden["seeds"][seed] = entry["fingerprints"]
    with open(GOLDEN_PATH, "w") as fh:
        json.dump(golden, fh, indent=2, sort_keys=True)
        fh.write("\n")


def render_rebalance(doc: Dict) -> str:
    lines = [f"rebalance {doc['mode']} run (seed={doc['seed']}) — "
             f"{doc['committed']} txns committed, {doc['failed']} failed"]
    for sample in doc["samples"]:
        lines.append(f"  t={sample['t_ms']:8.0f}ms  [{sample['label']}]  "
                     f"{sample['range_count']} range(s)")
        for rng in sample["ranges"]:
            span = rng.get("span", "(fixed)")
            qps = rng.get("qps")
            qps_text = f" qps={qps:.1f}" if qps is not None else ""
            gen = rng.get("generation")
            gen_text = f" gen={gen}" if gen is not None else ""
            lines.append(f"      {rng['name']:14s} {span:28s} "
                         f"lease={rng['lease_region']}"
                         f" keys={rng['keys']}{qps_text}{gen_text}")
    if doc["counters"]:
        lines.append("  counters:")
        for key, value in sorted(doc["counters"].items()):
            lines.append(f"      {key} = {value}")
    lines.append("  gates:")
    for gate, passed in sorted(doc["gates"].items()):
        if gate == "ok":
            continue
        lines.append(f"      {gate:28s} "
                     f"{'pass' if passed else 'FAIL'}")
    lines.append(f"  => {'OK' if doc['gates']['ok'] else 'GATE FAILURES'}")
    return "\n".join(lines)
