"""Baselines the paper compares against: duplicate indexes, legacy DDL."""

from .duplicate_indexes import DuplicateIndexTable
from .legacy_ddl import (
    LegacySchema,
    LegacyTable,
    legacy_add_region_ddl,
    legacy_convert_ddl,
    legacy_drop_region_ddl,
    legacy_new_schema_ddl,
)

__all__ = [
    "DuplicateIndexTable",
    "LegacySchema",
    "LegacyTable",
    "legacy_add_region_ddl",
    "legacy_convert_ddl",
    "legacy_drop_region_ddl",
    "legacy_new_schema_ddl",
]
