"""Legacy (pre-abstraction) DDL recipes, for Table 2.

Before the declarative abstractions, making a schema multi-region in
CRDB meant hand-writing, per table:

* a partitioning clause over every index (``PARTITION BY LIST``),
* one ``CONFIGURE ZONE`` per partition per index to pin replicas and
  leaseholders,
* and, for reference data, one duplicate covering index per non-primary
  region plus a ``CONFIGURE ZONE`` per index (the §7.3.1 baseline).

This module *generates* those statement lists from a schema description
so Table 2's "before" column is computed from the same schemas as the
"after" column, not hard-coded.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["LegacySchema", "LegacyTable", "legacy_new_schema_ddl",
           "legacy_convert_ddl", "legacy_add_region_ddl",
           "legacy_drop_region_ddl"]


@dataclass
class LegacyTable:
    """One table in a legacy multi-region conversion."""

    name: str
    #: 'regional' (partition by region) or 'global' (duplicate indexes).
    kind: str = "regional"
    #: Number of indexes (primary included) that must be partitioned.
    index_count: int = 1
    #: Does the schema need a new partitioning column added?
    needs_partition_column: bool = False


@dataclass
class LegacySchema:
    name: str
    tables: List[LegacyTable] = field(default_factory=list)


def legacy_new_schema_ddl(schema: LegacySchema,
                          regions: List[str]) -> List[str]:
    """Statements to build the schema multi-region the old way."""
    statements: List[str] = []
    n_regions = len(regions)
    for table in schema.tables:
        if table.kind == "regional":
            if table.needs_partition_column:
                statements.append(
                    f"ALTER TABLE {table.name} ADD COLUMN region STRING "
                    f"NOT NULL")
            for i in range(table.index_count):
                target = (table.name if i == 0
                          else f"{table.name}@idx{i}")
                statements.append(
                    f"ALTER {'TABLE' if i == 0 else 'INDEX'} {target} "
                    f"PARTITION BY LIST (region) ({_partitions(regions)})")
                for region in regions:
                    statements.append(
                        f"ALTER PARTITION {region} OF "
                        f"{'TABLE' if i == 0 else 'INDEX'} {target} "
                        f"CONFIGURE ZONE USING constraints = "
                        f"'[+region={region}]', lease_preferences = "
                        f"'[[+region={region}]]'")
        else:  # global: duplicate indexes
            for region in regions[1:]:
                statements.append(
                    f"CREATE INDEX {table.name}_idx_{region} ON "
                    f"{table.name} (id) STORING (payload)")
            for region in regions:
                target = (table.name if region == regions[0]
                          else f"{table.name}@{table.name}_idx_{region}")
                statements.append(
                    f"ALTER INDEX {target} CONFIGURE ZONE USING "
                    f"num_replicas = {n_regions}, lease_preferences = "
                    f"'[[+region={region}]]'")
    return statements


def legacy_convert_ddl(schema: LegacySchema,
                       regions: List[str]) -> List[str]:
    """Converting an existing single-region schema needs the same work."""
    return legacy_new_schema_ddl(schema, regions)


def legacy_add_region_ddl(schema: LegacySchema, regions: List[str],
                          new_region: str) -> List[str]:
    """Statements to extend the legacy setup with one more region."""
    statements: List[str] = []
    for table in schema.tables:
        if table.kind == "regional":
            for i in range(table.index_count):
                target = (table.name if i == 0
                          else f"{table.name}@idx{i}")
                statements.append(
                    f"ALTER {'TABLE' if i == 0 else 'INDEX'} {target} "
                    f"PARTITION BY LIST (region) "
                    f"({_partitions(regions + [new_region])})")
                statements.append(
                    f"ALTER PARTITION {new_region} OF "
                    f"{'TABLE' if i == 0 else 'INDEX'} {target} "
                    f"CONFIGURE ZONE USING constraints = "
                    f"'[+region={new_region}]'")
        else:
            statements.append(
                f"CREATE INDEX {table.name}_idx_{new_region} ON "
                f"{table.name} (id) STORING (payload)")
            statements.append(
                f"ALTER INDEX {table.name}@{table.name}_idx_{new_region} "
                f"CONFIGURE ZONE USING lease_preferences = "
                f"'[[+region={new_region}]]'")
    return statements


def legacy_drop_region_ddl(schema: LegacySchema, regions: List[str],
                           dropped: str) -> List[str]:
    statements: List[str] = []
    for table in schema.tables:
        if table.kind == "regional":
            for i in range(table.index_count):
                target = (table.name if i == 0
                          else f"{table.name}@idx{i}")
                statements.append(
                    f"ALTER {'TABLE' if i == 0 else 'INDEX'} {target} "
                    f"PARTITION BY LIST (region) "
                    f"({_partitions([r for r in regions if r != dropped])})")
        else:
            statements.append(
                f"DROP INDEX {table.name}@{table.name}_idx_{dropped}")
    return statements


def _partitions(regions: List[str]) -> str:
    return ", ".join(
        f"PARTITION {r} VALUES IN ('{r}')" for r in regions)
