"""The *duplicate indexes* baseline (paper §7.3.1).

CRDB's pre-multi-region recipe for low-latency consistent reads from
every region: create one covering secondary index per region and pin
each index's leaseholder to its region.  Reads use the local index
(strongly consistent, served by its leaseholder).  Writes must update
every index inside one transaction, fanning out across all regions.

The failure mode the paper measures (Fig 5): a reader that catches a
write in flight blocks on the intent until the writing transaction
finishes its WAN round trips — so read tail latency is unbounded under
contention, unlike GLOBAL tables whose reads wait at most
``max_clock_offset``.
"""

from __future__ import annotations

from typing import Any, Generator, List, Optional

from ..kv.range import Range
from ..placement.goals import SurvivalGoal, zone_config_for_home
from ..placement.provision import provision_range
from ..txn.coordinator import TransactionCoordinator

__all__ = ["DuplicateIndexTable"]


class DuplicateIndexTable:
    """A logical table materialized as one pinned index per region."""

    def __init__(self, cluster, coordinator: TransactionCoordinator,
                 regions: List[str], primary_region: Optional[str] = None,
                 name: str = "dup",
                 side_transport_interval_ms: Optional[float] = None):
        self.cluster = cluster
        self.coordinator = coordinator
        self.regions = list(regions)
        self.primary_region = primary_region or self.regions[0]
        #: region -> Range holding that region's covering index.
        self.indexes = {}
        for region in self.regions:
            config = zone_config_for_home(region, self.regions,
                                          SurvivalGoal.ZONE,
                                          placement_restricted=True)
            self.indexes[region] = provision_range(
                cluster, config, name=f"{name}@{region}",
                side_transport_interval_ms=side_transport_interval_ms)

    def local_index(self, gateway) -> Range:
        region = gateway.locality.region
        return self.indexes.get(region, self.indexes[self.primary_region])

    # -- operations (coroutines) --------------------------------------------------

    def read_co(self, gateway, key: Any) -> Generator:
        """Strongly-consistent read from the region-local index."""
        rng = self.local_index(gateway)

        def txn_fn(txn):
            value = yield from txn.read(rng, key)
            return value

        value, _commit_ts = yield from self.coordinator.run(gateway, txn_fn)
        return value

    def write_co(self, gateway, key: Any, value: Any) -> Generator:
        """Write-through to every region's index in one transaction.

        The primary index is the transaction anchor; all index writes
        fan out in parallel, so latency is one round trip to the
        furthest region (plus commit), and contending writers queue.
        """
        ordered = [self.indexes[self.primary_region]]
        ordered += [rng for region, rng in self.indexes.items()
                    if region != self.primary_region]

        def txn_fn(txn):
            yield from txn.write_batch(
                [(rng, key, value) for rng in ordered])
            return None

        _result, commit_ts = yield from self.coordinator.run(gateway, txn_fn)
        return commit_ts

    def bulk_load(self, items, ts) -> None:
        for rng in self.indexes.values():
            rng.bulk_ingest(items, ts)
