"""Command-line entry point: run paper experiments by name.

Usage::

    python -m repro list
    python -m repro table1
    python -m repro fig3 [--quick]
    python -m repro all [--quick]
    python -m repro chaos list
    python -m repro chaos region-blackout [--seed N]
    python -m repro chaos all --seeds 5 [--json] [--parallel N]
    python -m repro sweep [--kinds chaos,verify] [--seeds K] [--parallel N]
    python -m repro verify [--scenario NAME|all|clock] [--seed N] [--json]
    python -m repro verify --scenario all --protocol epoch-occ --seeds 5
    python -m repro verify --check history.json
    python -m repro repair [--seed N] [--scenario NAME]
    python -m repro rebalance [--seeds K] [--json] [--update-golden]
    python -m repro protocols [--seeds K] [--json] [--update-golden]
    python -m repro trace [--workload movr] [--scenario NAME] [--seed N]
    python -m repro metrics [--workload movr] [--scenario NAME] [--json]
    python -m repro bench [--workload kv] [--obs off] [--scale 0.5]

``--quick`` shrinks client/op counts (~5x faster, coarser percentiles).
``chaos`` runs a nemesis fault-injection scenario and prints the
invariant report plus an availability/latency timeline (or, with
``--json``, a machine-readable report); it exits non-zero if any
invariant is violated.  ``repair`` runs the self-healing scenarios and
reports liveness transitions, repair actions, and time-to-repair.
``trace`` runs a deterministic workload (or chaos scenario) and prints
the span tree with the critical path and commit-wait breakdown;
``metrics`` prints the unified registry snapshot for the same runs.
``chaos`` and ``verify`` accept ``--protocol epoch-occ`` to run their
scenarios on the optimistic transaction backend; ``protocols`` runs
both backends head-to-head on the identical workload and nemesis
schedule and checks per-(protocol, seed) golden fingerprints.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Callable, Dict

from .harness.experiments import (
    run_clock_skew_sweep,
    run_commit_wait_ablation,
    run_fig3,
    run_fig4a,
    run_fig4b,
    run_fig4c,
    run_fig5,
    run_fig6,
    run_lead_time_ablation,
    run_side_transport_ablation,
    run_table1,
    run_table2,
)

__all__ = ["main"]


def _fig3(quick: bool) -> None:
    scale = dict(clients_per_region=1, ops_per_client=15) if quick else {}
    run_fig3(**scale).table().print()


def _fig4a(quick: bool) -> None:
    scale = dict(clients_per_region=1, ops_per_client=25) if quick else {}
    run_fig4a(**scale).table().print()


def _fig4b(quick: bool) -> None:
    scale = dict(clients_per_region=1, ops_per_client=30) if quick else {}
    run_fig4b(**scale).table().print()


def _fig4c(quick: bool) -> None:
    scale = dict(ops_per_client=25) if quick else {}
    run_fig4c(**scale).table().print()


def _fig5(quick: bool) -> None:
    scale = (dict(clients_per_region=2, ops_per_client=20,
                  keys_per_region=40)
             if quick else dict(clients_per_region=4, ops_per_client=40,
                                keys_per_region=40))
    run_fig5(**scale).table().print()


def _fig6(quick: bool) -> None:
    if quick:
        result = run_fig6(region_counts=(4, 10), txns_per_client=8)
    else:
        result = run_fig6()
    result.table().print()


def _table1(_quick: bool) -> None:
    run_table1().print()


def _table2(_quick: bool) -> None:
    run_table2().table().print()


def _ablations(_quick: bool) -> None:
    run_lead_time_ablation().print()
    run_commit_wait_ablation().print()
    run_side_transport_ablation().print()


def _clockskew(quick: bool) -> None:
    scale = dict(n_ops=8) if quick else {}
    run_clock_skew_sweep(**scale).print()


EXPERIMENTS: Dict[str, Callable[[bool], None]] = {
    "table1": _table1,
    "fig3": _fig3,
    "fig4a": _fig4a,
    "fig4b": _fig4b,
    "fig4c": _fig4c,
    "fig5": _fig5,
    "fig6": _fig6,
    "table2": _table2,
    "ablations": _ablations,
    "clockskew": _clockskew,
}


def _chaos_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro chaos",
        description="Run a nemesis chaos scenario and audit invariants.")
    parser.add_argument("scenario",
                        help="scenario name, 'all', or 'list'")
    parser.add_argument("--seed", type=int, default=0,
                        help="single seed to run (default 0)")
    parser.add_argument("--seeds", type=int, default=1, metavar="K",
                        help="run seeds 0..K-1 instead of --seed")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON report for "
                             "all runs instead of the text rendering")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="farm runs across N worker processes "
                             "(deterministic merge; per-run text output "
                             "is summarized)")
    parser.add_argument("--protocol", default="crdb",
                        choices=["crdb", "epoch-occ"],
                        help="transaction backend the scenario's clients "
                             "run on (default crdb)")
    args = parser.parse_args(argv)

    from .chaos import SCENARIOS, run_scenario

    protocol = None if args.protocol == "crdb" else args.protocol
    if args.scenario == "list":
        for name in sorted(SCENARIOS):
            print(name)
        return 0
    names = sorted(SCENARIOS) if args.scenario == "all" else [args.scenario]
    for name in names:
        if name not in SCENARIOS:
            print(f"unknown scenario {name!r} (try 'list')", file=sys.stderr)
            return 2
    if protocol is not None:
        # The open-loop overload scenarios drive their own harness and
        # take no protocol override; drop them from 'all' with a note.
        skipped = [n for n in names if n.startswith("overload")]
        if skipped:
            if args.scenario != "all":
                print(f"{args.scenario!r} does not support --protocol "
                      f"(open-loop overload harness)", file=sys.stderr)
                return 2
            names = [n for n in names if not n.startswith("overload")]
            print(f"[skipping {', '.join(skipped)}: no protocol override]",
                  file=sys.stderr)
    seeds = list(range(args.seeds)) if args.seeds > 1 else [args.seed]
    if args.parallel > 1:
        return _farmed_runs("chaos", names, seeds, args.parallel, args.json,
                            protocol=protocol)
    violated = False
    runs = []
    for name in names:
        for seed in seeds:
            start = time.time()
            result = run_scenario(name, seed, txn_protocol=protocol)
            if args.json:
                record = result.to_json()
                record["wall_s"] = round(time.time() - start, 2)
                runs.append(record)
            else:
                print(result.render())
                print(f"[{name} seed={seed} finished in "
                      f"{time.time() - start:.1f}s wall]\n")
            violated = violated or not result.ok
    if args.json:
        print(json.dumps({"ok": not violated, "runs": runs}, indent=2))
    return 1 if violated else 0


def _farmed_runs(kind: str, names, seeds, workers: int, as_json: bool,
                 protocol=None) -> int:
    """Shared ``--parallel`` path for the chaos and verify CLIs."""
    from .harness.farm import (dumps_sweep, merge_results, render_sweep,
                               run_farm)

    start = time.time()
    jobs = [{"kind": kind, "scenario": name, "seed": seed}
            for name in names for seed in seeds]
    if protocol is not None:
        for job in jobs:
            job["protocol"] = protocol
    doc = merge_results(run_farm(jobs, workers=workers))
    if as_json:
        print(dumps_sweep(doc))
    else:
        print(f"{kind} sweep: {len(jobs)} runs on {workers} workers")
        print(render_sweep(doc))
        print(f"[{time.time() - start:.1f}s wall]")
    return 0 if doc["ok"] else 1


def _verify_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro verify",
        description="Run the randomized transactional workload under a "
                    "chaos scenario and check the recorded history for "
                    "isolation/staleness anomalies (Elle-style).")
    parser.add_argument("--scenario", default="none",
                        help="chaos scenario name, 'none' (fault-free), "
                             "'all' (the verify sweep set), 'clock' (the "
                             "three clock-fault scenarios), or 'list'")
    parser.add_argument("--seed", type=int, default=0,
                        help="single seed to run (default 0)")
    parser.add_argument("--seeds", type=int, default=1, metavar="K",
                        help="run seeds 0..K-1 instead of --seed")
    parser.add_argument("--json", action="store_true",
                        help="emit one machine-readable JSON report for "
                             "all runs instead of the text rendering")
    parser.add_argument("--dump", metavar="FILE", default=None,
                        help="write the recorded history of the first "
                             "anomalous run (or, if clean, the last run) "
                             "to FILE for offline re-checking")
    parser.add_argument("--check", metavar="FILE", default=None,
                        help="re-check a dumped history file instead of "
                             "running a workload (byte-identical report)")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="farm runs across N worker processes "
                             "(deterministic merge; incompatible with "
                             "--dump)")
    parser.add_argument("--protocol", default="crdb",
                        choices=["crdb", "epoch-occ"],
                        help="transaction backend the workload runs on; "
                             "with epoch-occ, --scenario all means the "
                             "differential OCC sweep set (default crdb)")
    args = parser.parse_args(argv)

    from .verify import (OCC_ABLATION_SCENARIO, OCC_SWEEP_SCENARIOS,
                         VERIFY_SCENARIOS, VerifyHistory, check, run_verify)
    from .verify.generator import CLOCK_SCENARIOS

    if args.check is not None:
        history = VerifyHistory.load(args.check)
        report = check(history)
        print(report.dumps() if args.json else report.render())
        return 0 if report.ok else 1

    protocol = None if args.protocol == "crdb" else args.protocol
    if args.scenario == "list":
        for name in ["none"] + VERIFY_SCENARIOS + [OCC_ABLATION_SCENARIO]:
            print(name)
        return 0
    names = ((OCC_SWEEP_SCENARIOS if protocol == "epoch-occ"
              else VERIFY_SCENARIOS) if args.scenario == "all"
             else list(CLOCK_SCENARIOS) if args.scenario == "clock"
             else [args.scenario])
    valid = set(VERIFY_SCENARIOS) | {"none", OCC_ABLATION_SCENARIO}
    for name in names:
        if name not in valid:
            print(f"unknown scenario {name!r} (try 'list')",
                  file=sys.stderr)
            return 2
    seeds = list(range(args.seeds)) if args.seeds > 1 else [args.seed]
    if args.parallel > 1:
        if args.dump:
            print("--parallel cannot dump histories (workers are "
                  "shared-nothing); rerun the offending seed alone",
                  file=sys.stderr)
            return 2
        return _farmed_runs("verify", names, seeds, args.parallel,
                            args.json, protocol=protocol)
    violated = False
    dumped = False
    runs = []
    for name in names:
        for seed in seeds:
            start = time.time()
            result = run_verify(name, seed, protocol=protocol)
            if args.json:
                record = result.to_json()
                record["wall_s"] = round(time.time() - start, 2)
                runs.append(record)
            else:
                print(result.render())
                print(f"[{name} seed={seed} finished in "
                      f"{time.time() - start:.1f}s wall]\n")
            if args.dump and not dumped:
                # The file holds the first anomalous history (or, with
                # everything clean so far, the most recent clean run).
                result.history.dump(args.dump)
                dumped = not result.ok
            violated = violated or not result.ok
    if args.json:
        print(json.dumps({"ok": not violated, "runs": runs}, indent=2))
    return 1 if violated else 0


REPAIR_SCENARIOS = ("kill-node-repair", "region-loss-repair")


def _repair_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro repair",
        description="Run the self-healing scenarios and report store "
                    "liveness, repair actions, and time-to-repair.")
    parser.add_argument("--scenario", default=None,
                        choices=list(REPAIR_SCENARIOS),
                        help="run only this repair scenario (default both)")
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from .chaos import run_scenario
    from .metrics.histogram import Summary

    names = [args.scenario] if args.scenario else list(REPAIR_SCENARIOS)
    violated = False
    for name in names:
        result = run_scenario(name, args.seed)
        harness = result.harness
        liveness = harness.liveness
        metrics = harness.repair_queue.metrics
        guard = harness.range.group.config_guard
        print(f"repair scenario {name!r} (seed={args.seed}) — "
              f"{result.duration_ms:.0f}ms sim")
        print("  liveness transitions:")
        if liveness.transitions:
            for when, node_id, old, new in liveness.transitions:
                print(f"    t={when:8.1f}ms  n{node_id}: {old} -> {new}")
        else:
            print("    (none)")
        print("  repair actions:")
        for kind in sorted(set(metrics.actions) | set(metrics.failures)):
            done = metrics.actions.get(kind, 0)
            failed = metrics.failures.get(kind, 0)
            print(f"    {kind:28s} done={done} failed={failed}")
        if not metrics.actions and not metrics.failures:
            print("    (none)")
        ttr = Summary(metrics.time_to_repair_ms)
        print(f"  time-to-repair: n={ttr.count} p50={ttr.p50:.0f}ms "
              f"max={ttr.max:.0f}ms (detection-to-healthy, scan-quantized)")
        print(f"  scans={metrics.scans} "
              f"under-replicated={metrics.under_replicated_ranges} "
              f"config-changes={guard.changes} "
              f"max-inflight-changes={guard.max_inflight}")
        verdict = "OK" if result.ok else "INVARIANT VIOLATIONS"
        print("  invariants:")
        print(result.report.render())
        print(f"  => {verdict}\n")
        violated = violated or not result.ok
    return 1 if violated else 0


def _rebalance_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro rebalance",
        description="Run the elastic-keyspace experiment: a seeded hot "
                    "workload drives size/load splits, a follow-the-"
                    "workload lease move, and cold merges back to one "
                    "range — checked against committed per-seed golden "
                    "fingerprints (REBALANCE_golden.json), including a "
                    "legacy run that proves fixed-range behaviour is "
                    "untouched when elasticity is disabled.")
    parser.add_argument("--seed", type=int, default=None,
                        help="single seed to run (default: the golden "
                             "set 0,1,2)")
    parser.add_argument("--seeds", type=int, default=None, metavar="K",
                        help="run seeds 0..K-1")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable suite document")
    parser.add_argument("--update-golden", action="store_true",
                        help="promote this run's fingerprints to the "
                             "committed golden file")
    parser.add_argument("--no-golden", action="store_true",
                        help="skip the golden-fingerprint comparison "
                             "(gates still apply)")
    args = parser.parse_args(argv)

    from .harness.rebalance import (GOLDEN_SEEDS, check_rebalance_golden,
                                    render_rebalance, run_rebalance_suite,
                                    update_rebalance_golden)

    if args.seeds is not None:
        seeds = list(range(args.seeds))
    elif args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(GOLDEN_SEEDS)
    suite = run_rebalance_suite(seeds)
    failures = []
    if args.update_golden:
        update_rebalance_golden(suite)
    elif not args.no_golden:
        failures = check_rebalance_golden(suite)
    if args.json:
        suite["golden_failures"] = failures
        print(json.dumps(suite, indent=2, sort_keys=True))
    else:
        for seed in seeds:
            entry = suite["runs"][str(seed)]
            print(render_rebalance(entry["elastic"]))
            print(render_rebalance(entry["legacy"]))
            print()
        if args.update_golden:
            print("golden fingerprints updated")
        elif failures:
            print("GOLDEN FINGERPRINT MISMATCHES:")
            for failure in failures:
                print(f"  {failure}")
        elif not args.no_golden:
            print("fingerprints match committed golden")
    return 0 if suite["ok"] and not failures else 1


def _protocols_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro protocols",
        description="Run the transaction-protocol head-to-head: both "
                    "TxnProtocol backends (crdb, epoch-occ) drive the "
                    "same seeded contended workload on the same cluster "
                    "build with a partition-leaseholder nemesis mid-run, "
                    "reporting p50/p99 commit latency, abort rates, and "
                    "the commit-wait vs epoch-wait breakdown — checked "
                    "against committed per-(protocol, seed) golden "
                    "fingerprints (PROTOCOLS_golden.json).")
    parser.add_argument("--seed", type=int, default=None,
                        help="single seed to run (default: the golden "
                             "set 0,1,2)")
    parser.add_argument("--seeds", type=int, default=None, metavar="K",
                        help="run seeds 0..K-1")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable suite document")
    parser.add_argument("--update-golden", action="store_true",
                        help="promote this run's fingerprints to the "
                             "committed golden file")
    parser.add_argument("--no-golden", action="store_true",
                        help="skip the golden-fingerprint comparison "
                             "(the counter audit still applies)")
    args = parser.parse_args(argv)

    from .harness.protocols import (GOLDEN_SEEDS, check_protocols_golden,
                                    render_protocols, run_protocols_suite,
                                    update_protocols_golden)

    if args.seeds is not None:
        seeds = list(range(args.seeds))
    elif args.seed is not None:
        seeds = [args.seed]
    else:
        seeds = list(GOLDEN_SEEDS)
    suite = run_protocols_suite(seeds)
    failures = []
    if args.update_golden:
        update_protocols_golden(suite)
    elif not args.no_golden:
        failures = check_protocols_golden(suite)
    if args.json:
        suite["golden_failures"] = failures
        print(json.dumps(suite, indent=2, sort_keys=True))
    else:
        print(render_protocols(suite))
        if args.update_golden:
            print("golden fingerprints updated")
        elif failures:
            print("GOLDEN FINGERPRINT MISMATCHES:")
            for failure in failures:
                print(f"  {failure}")
        elif not args.no_golden:
            print("fingerprints match committed golden")
    return 0 if suite["ok"] and not failures else 1


def _observed_run(args):
    """Run the workload or scenario named by ``args``; returns
    (title, Observability) with the run's spans and metrics attached."""
    if args.scenario is not None:
        from .chaos import SCENARIOS, run_scenario
        if args.scenario not in SCENARIOS:
            raise SystemExit(
                f"unknown scenario {args.scenario!r} "
                f"(try: {', '.join(sorted(SCENARIOS))})")
        result = run_scenario(args.scenario, args.seed)
        return f"chaos scenario {args.scenario!r}", result.harness.sim.obs
    from .harness.tracing import run_traced_workload
    engine = run_traced_workload(args.workload, seed=args.seed)
    return f"workload {args.workload!r}", engine.cluster.sim.obs


def _run_parser(prog: str, description: str) -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog=prog, description=description)
    parser.add_argument("--workload", default="movr",
                        choices=["movr", "kv"],
                        help="traced workload to run (default movr)")
    parser.add_argument("--scenario", default=None, metavar="NAME",
                        help="observe a chaos scenario instead of a "
                             "workload")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    return parser


def _trace_main(argv) -> int:
    parser = _run_parser(
        "python -m repro trace",
        "Run a deterministic workload (or chaos scenario) and render "
        "its span tree, critical path, and commit-wait breakdown.")
    args = parser.parse_args(argv)

    from .obs import (containment_violations, critical_path, render_tree,
                      spans_named)

    title, obs = _observed_run(args)
    tracer = obs.tracer
    if args.json:
        print(tracer.to_json())
        return 0
    roots = tracer.roots
    print(f"trace for {title} (seed={args.seed}) — "
          f"{len(roots)} root spans")
    for root in roots:
        print(render_tree(root))

    slowest = max(roots, key=lambda r: (r.duration_ms, -r.span_id))
    print(f"critical path (slowest root, "
          f"{slowest.duration_ms:.3f}ms total):")
    for span in critical_path(slowest):
        print(f"  {span.name} #{span.span_id} {span.duration_ms:.3f}ms")

    waits = [s for r in roots for s in spans_named(r, "txn.commit_wait")]
    txns = [s for r in roots for s in spans_named(r, "txn")]
    print("commit-wait breakdown:")
    if waits:
        total_wait = sum(s.duration_ms for s in waits)
        total_txn = sum(s.duration_ms for s in txns)
        for span in waits:
            txn_root = span.root()
            share = (100.0 * span.duration_ms / txn_root.duration_ms
                     if txn_root.duration_ms else 0.0)
            print(f"  txn {span.tags.get('txn_id')}: waited "
                  f"{span.duration_ms:.3f}ms "
                  f"({share:.0f}% of its root span)")
        print(f"  total: {total_wait:.3f}ms commit wait across "
              f"{total_txn:.3f}ms of transaction time")
    else:
        print("  (no commit waits)")

    violations = [v for r in roots for v in containment_violations(r)]
    if violations:
        print(f"containment warnings ({len(violations)}):")
        for violation in violations:
            print(f"  {violation}")
    return 0


def _metrics_main(argv) -> int:
    parser = _run_parser(
        "python -m repro metrics",
        "Run a deterministic workload (or chaos scenario) and print "
        "the unified metrics registry snapshot.")
    parser.add_argument("--prefix", default=None, metavar="NAME",
                        help="only instruments whose name starts here "
                             "(e.g. 'raft.' or 'txn.')")
    args = parser.parse_args(argv)

    title, obs = _observed_run(args)
    registry = obs.registry
    if args.json:
        snapshot = registry.snapshot()
        if args.prefix:
            snapshot = {
                kind: {key: value for key, value in table.items()
                       if key.startswith(args.prefix)}
                for kind, table in snapshot.items()}
        print(json.dumps(snapshot, indent=2, sort_keys=True))
        return 0
    print(f"metrics for {title} (seed={args.seed})")
    print(registry.render(prefix=args.prefix))
    return 0


def _bench_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Run the fixed-seed engine benchmarks and print "
                    "events/sec, wall-clock, and peak allocation. Use "
                    "scripts/bench.py to maintain BENCH_results.json.")
    parser.add_argument("--workload", default=None,
                        choices=["kv", "movr", "tpcc"],
                        help="run only this workload (default: all)")
    parser.add_argument("--obs", default=None, choices=["full", "off"],
                        help="run only this obs mode (default: both)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=1.0,
                        help="op-count multiplier (default 1.0)")
    parser.add_argument("--alloc", action="store_true",
                        help="add a tracemalloc pass reporting "
                             "peak_alloc_kb/alloc_count (separate run; "
                             "never taints the timed pass)")
    parser.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON rows")
    args = parser.parse_args(argv)

    from .harness.bench import BENCH_WORKLOADS, bench_suite, render_rows

    workloads = [args.workload] if args.workload else list(BENCH_WORKLOADS)
    obs_modes = [args.obs] if args.obs else ["full", "off"]
    rows = bench_suite(workloads, seed=args.seed, obs_modes=obs_modes,
                       scale=args.scale,
                       measure_allocs=args.alloc,
                       log=None if args.json else print)
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
    else:
        print(render_rows(rows))
    return 0


def _scale_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro scale",
        description="Open-loop saturation sweep: deterministic users vs "
                    "p50/p99/goodput curves with admission control on, "
                    "plus the congestion-collapse baseline with the "
                    "protections off.")
    parser.add_argument("--seed", type=int, default=0,
                        help="simulation seed (default 0)")
    parser.add_argument("--seeds", type=int, default=None, metavar="K",
                        help="run seeds 0..K-1 (quick curves, farmable "
                             "with --parallel) instead of one full curve")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="with --seeds: farm the per-seed curves "
                             "across N worker processes")
    parser.add_argument("--quick", action="store_true",
                        help="reduced sweep (1x and 4x only, shorter "
                             "arrival window)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable document instead "
                             "of the table")
    parser.add_argument("--smoke", action="store_true",
                        help="quick sweep + regression gate against the "
                             "committed SCALE_results.json baseline "
                             "(exit 1 on >25%% goodput/p99 regression or "
                             "a failed graceful-degradation gate)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --smoke: promote the fresh run to be "
                             "the committed baseline")
    args = parser.parse_args(argv)

    from .harness.scale import (RESULTS_PATH, check_scale_regression,
                                render_scale, run_scale)

    if args.seeds is not None:
        from .harness.farm import dumps_sweep, merge_results, run_farm
        jobs = [{"kind": "scale", "seed": seed, "quick": True}
                for seed in range(args.seeds)]
        merged = merge_results(run_farm(jobs, workers=args.parallel))
        if args.json:
            print(dumps_sweep(merged))
        else:
            for run in merged["runs"]:
                print(render_scale(run["report"]))
                print()
            print(f"=> {merged['total']} seeds, "
                  + ("all gates ok" if merged["ok"]
                     else "GATE FAILURES: " + ", ".join(merged["failed"])))
        return 0 if merged["ok"] else 1

    doc = run_scale(seed=args.seed, quick=args.quick or args.smoke)
    if not args.smoke:
        print(json.dumps(doc, indent=2) if args.json else render_scale(doc))
        return 0 if doc["gates"]["ok"] else 1

    stored = {}
    if os.path.exists(RESULTS_PATH):
        with open(RESULTS_PATH) as fh:
            stored = json.load(fh)
    failures = check_scale_regression(doc, stored.get("smoke", {}))
    stored["smoke_latest"] = doc
    if args.update_baseline or "smoke" not in stored:
        stored["smoke"] = doc
        print("scale smoke baseline updated")
    with open(RESULTS_PATH, "w") as fh:
        json.dump(stored, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(render_scale(doc))
    if failures:
        print("\nREGRESSION vs committed baseline:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print("\nno regression vs committed baseline (tolerance 25%)")
    return 0


def _sweep_main(argv) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description="Fan seeds x scenarios x configs across worker "
                    "processes and merge the chaos/verify/scale reports "
                    "into one deterministic document (byte-identical "
                    "regardless of worker count).")
    parser.add_argument("--kinds", default="chaos,verify",
                        help="comma-separated subset of chaos,verify,"
                             "scale (default chaos,verify)")
    parser.add_argument("--scenarios", default=None, metavar="NAMES",
                        help="comma-separated scenario names (default: "
                             "every scenario of each kind)")
    parser.add_argument("--seeds", type=int, default=1, metavar="K",
                        help="run seeds 0..K-1 (default 1)")
    parser.add_argument("--parallel", type=int, default=None, metavar="N",
                        help="worker processes (default: one per core, "
                             "capped at 8; 1 forces sequential)")
    parser.add_argument("--json", action="store_true",
                        help="emit the merged machine-readable document")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="also write the merged document to FILE")
    args = parser.parse_args(argv)

    from .harness.farm import (SWEEP_KINDS, default_workers, dumps_sweep,
                               merge_results, render_sweep, run_farm,
                               sweep_jobs)

    kinds = [k.strip() for k in args.kinds.split(",") if k.strip()]
    for kind in kinds:
        if kind not in SWEEP_KINDS:
            print(f"unknown sweep kind {kind!r} "
                  f"(valid: {', '.join(SWEEP_KINDS)})", file=sys.stderr)
            return 2
    scenarios = (None if args.scenarios is None else
                 [s.strip() for s in args.scenarios.split(",") if s.strip()])
    start = time.time()
    jobs = sweep_jobs(kinds, scenarios, range(max(1, args.seeds)))
    if not jobs:
        print("no jobs matched the requested kinds/scenarios",
              file=sys.stderr)
        return 2
    workers = default_workers(args.parallel)
    doc = merge_results(run_farm(jobs, workers=workers))
    serialized = dumps_sweep(doc)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(serialized)
            fh.write("\n")
    if args.json:
        print(serialized)
    else:
        print(f"sweep: {len(jobs)} runs on {workers} workers")
        print(render_sweep(doc))
        print(f"[{time.time() - start:.1f}s wall]")
    return 0 if doc["ok"] else 1


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return _sweep_main(argv[1:])
    if argv and argv[0] == "bench":
        return _bench_main(argv[1:])
    if argv and argv[0] == "scale":
        return _scale_main(argv[1:])
    if argv and argv[0] == "chaos":
        return _chaos_main(argv[1:])
    if argv and argv[0] == "verify":
        return _verify_main(argv[1:])
    if argv and argv[0] == "repair":
        return _repair_main(argv[1:])
    if argv and argv[0] == "rebalance":
        return _rebalance_main(argv[1:])
    if argv and argv[0] == "protocols":
        return _protocols_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "metrics":
        return _metrics_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Regenerate the paper's evaluation tables and figures.")
    parser.add_argument("experiment",
                        choices=sorted(EXPERIMENTS) + ["all", "list"],
                        help="experiment to run (or 'all' / 'list')")
    parser.add_argument("--quick", action="store_true",
                        help="smaller runs (~5x faster, coarser tails)")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0

    names = (sorted(EXPERIMENTS) if args.experiment == "all"
             else [args.experiment])
    for name in names:
        start = time.time()
        EXPERIMENTS[name](args.quick)
        print(f"\n[{name} finished in {time.time() - start:.1f}s wall]")
    return 0


if __name__ == "__main__":
    sys.exit(main())
