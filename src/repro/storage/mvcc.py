"""Multi-version concurrency control storage.

Each replica of a Range owns one :class:`MVCCStore`.  The store keeps,
per key, a list of committed versions (newest first) plus at most one
*write intent* — a provisional version laid down by an in-flight
transaction.  Raft applies the same logical commands to every replica's
store, so followers hold the data needed for follower reads.

The read path implements the paper's visibility rules:

* a read at ``ts`` returns the newest committed version ``<= ts``;
* an intent from another transaction at ``<= ts`` forces conflict
  resolution (:class:`~repro.errors.WriteIntentError`);
* a committed value or intent in ``(ts, ts + uncertainty]`` forces an
  uncertainty restart
  (:class:`~repro.errors.ReadWithinUncertaintyIntervalError`).
"""

from __future__ import annotations

from array import array
from bisect import bisect_left, bisect_right
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import (
    ReadWithinUncertaintyIntervalError,
    WriteIntentError,
    WriteTooOldError,
)
from ..sim.clock import TS_ZERO, Timestamp

__all__ = ["MVCCStore", "Version", "Intent", "ReadResult"]


@dataclass(frozen=True, slots=True)
class Version:
    """A committed MVCC version of a key."""

    ts: Timestamp
    value: Any

    @property
    def is_tombstone(self) -> bool:
        return self.value is None


@dataclass(slots=True)
class Intent:
    """A provisional write by an in-flight transaction."""

    txn_id: int
    ts: Timestamp
    value: Any
    #: Node holding the transaction record (for conflict resolution).
    anchor_node_id: int = -1


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Value returned by an MVCC read."""

    value: Any
    ts: Timestamp
    from_intent: bool = False

    @property
    def exists(self) -> bool:
        return self.value is not None


class _KeyHistory:
    """Version history of one key, packed into flat parallel arrays.

    Committed versions live in timestamp-ascending order across four
    lockstep columns: ``phys`` (C doubles), ``logs`` (C int64s),
    ``synth`` (byte flags) and ``values`` (payload objects).  Lookups
    bisect the ``phys`` array directly — a C-level scan over unboxed
    doubles, refined by logical tiebreak only inside a run of equal
    physicals — and no :class:`Timestamp`/:class:`Version` objects are
    allocated per stored version.  Timestamps are rematerialized only
    at the API boundary (read results, error payloads).
    """

    __slots__ = ("phys", "logs", "synth", "values", "intent")

    def __init__(self):
        self.phys = array("d")          # physical ms, ascending
        self.logs = array("q")          # logical tiebreaks
        self.synth = bytearray()        # synthetic bits
        self.values: List[Any] = []     # payloads (parallel)
        self.intent: Optional[Intent] = None

    @property
    def versions(self) -> List[Version]:
        """Materialized view of the packed columns (tests, digests,
        debugging — never the hot path)."""
        return [Version(Timestamp(p, log, bool(s)), v)
                for p, log, s, v in zip(self.phys, self.logs,
                                        self.synth, self.values)]

    def bisect_at_or_below(self, ts: Timestamp) -> int:
        """Rightmost insertion point for ``ts``: count of stored
        versions with timestamp ``<= ts``."""
        phys = self.phys
        p = ts.physical
        idx = bisect_right(phys, p)
        if idx and phys[idx - 1] == p:
            # Refine inside the run of equal physicals.
            logs = self.logs
            lo = bisect_left(phys, p)
            hi = idx
            tie = ts.logical
            while lo < hi:
                mid = (lo + hi) >> 1
                if logs[mid] <= tie:
                    lo = mid + 1
                else:
                    hi = mid
            return lo
        return idx

    def ts_at(self, idx: int) -> Timestamp:
        return Timestamp(self.phys[idx], self.logs[idx],
                         bool(self.synth[idx]))

    def newest_at_or_below(self, ts: Timestamp) -> Optional[Version]:
        idx = self.bisect_at_or_below(ts)
        if idx == 0:
            return None
        return Version(self.ts_at(idx - 1), self.values[idx - 1])

    def newest(self) -> Optional[Version]:
        if not self.phys:
            return None
        return Version(self.ts_at(len(self.phys) - 1), self.values[-1])

    def any_in_interval(self, lo: Timestamp, hi: Timestamp) -> Optional[Version]:
        """Newest committed version with ``lo < ts <= hi``, if any."""
        idx = self.bisect_at_or_below(hi)
        if idx == 0:
            return None
        ts = self.ts_at(idx - 1)
        return Version(ts, self.values[idx - 1]) if ts > lo else None

    def insert_version(self, version: Version) -> None:
        self.insert_at(version.ts, version.value)

    def insert_at(self, ts: Timestamp, value: Any) -> None:
        idx = self.bisect_at_or_below(ts)
        self.phys.insert(idx, ts.physical)
        self.logs.insert(idx, ts.logical)
        self.synth.insert(idx, 1 if ts.synthetic else 0)
        self.values.insert(idx, value)


class MVCCStore:
    """Versioned key-value state for one replica of one Range.

    ``registry`` (attached by the owning :class:`~repro.kv.replica.Replica`)
    mirrors storage activity onto the shared metrics registry; the store
    itself stays constructible without a simulator for unit tests.
    """

    def __init__(self, registry=None):
        self._data: Dict[Any, _KeyHistory] = {}
        self.registry = registry
        #: Lazily-cached counter handles — one registry lookup per name
        #: per store, not per operation.
        self._counters: Dict[str, Any] = {}

    def _count(self, name: str) -> None:
        if self.registry is not None:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = self.registry.counter(name)
            counter.inc()

    def _history(self, key: Any) -> _KeyHistory:
        history = self._data.get(key)
        if history is None:
            history = _KeyHistory()
            self._data[key] = history
        return history

    # -- reads -------------------------------------------------------------

    def get(self, key: Any, ts: Timestamp, txn_id: Optional[int] = None,
            uncertainty_limit: Optional[Timestamp] = None) -> ReadResult:
        """Read ``key`` at ``ts``.

        ``txn_id`` lets a transaction read its own intents.
        ``uncertainty_limit`` is the upper bound of the reader's
        uncertainty interval; values in ``(ts, limit]`` raise
        :class:`ReadWithinUncertaintyIntervalError`.
        """
        self._count("mvcc.gets")
        history = self._data.get(key)
        if history is None:
            return ReadResult(None, TS_ZERO)

        intent = history.intent
        if intent is not None:
            if txn_id is not None and intent.txn_id == txn_id:
                # Read-your-writes: a transaction sees its own intent.
                return ReadResult(intent.value, intent.ts, from_intent=True)
            if intent.ts <= ts:
                raise WriteIntentError(key, intent.txn_id, intent.ts)
            if uncertainty_limit is not None and intent.ts <= uncertainty_limit:
                # An uncertain intent is both uncertain and unresolved;
                # surface the intent conflict so the reader waits for the
                # writer, then retries with a bumped timestamp.
                raise WriteIntentError(key, intent.txn_id, intent.ts)

        if uncertainty_limit is not None:
            uidx = history.bisect_at_or_below(uncertainty_limit)
            if uidx:
                uncertain_ts = history.ts_at(uidx - 1)
                if uncertain_ts > ts:
                    raise ReadWithinUncertaintyIntervalError(
                        key, uncertain_ts, ts)

        idx = history.bisect_at_or_below(ts)
        if idx == 0:
            return ReadResult(None, TS_ZERO)
        value = history.values[idx - 1]
        if value is None:  # tombstone
            return ReadResult(None, history.ts_at(idx - 1))
        return ReadResult(value, history.ts_at(idx - 1))

    def intent_for(self, key: Any) -> Optional[Intent]:
        history = self._data.get(key)
        return history.intent if history else None

    def newest_version_ts(self, key: Any) -> Timestamp:
        history = self._data.get(key)
        if history is None or not history.phys:
            return TS_ZERO
        return history.ts_at(len(history.phys) - 1)

    def changed_in_interval(self, key: Any, lo: Timestamp, hi: Timestamp,
                            txn_id: Optional[int] = None) -> bool:
        """Did ``key`` gain a committed version or foreign intent in
        ``(lo, hi]``?  Used by read refreshes (paper §5.1 / §6.2)."""
        history = self._data.get(key)
        if history is None:
            return False
        if history.any_in_interval(lo, hi) is not None:
            return True
        intent = history.intent
        if intent is not None and intent.txn_id != txn_id and intent.ts <= hi:
            return True
        return False

    # -- writes ------------------------------------------------------------

    def check_write(self, key: Any, ts: Timestamp,
                    txn_id: int) -> Timestamp:
        """Validate a proposed write; returns the minimum legal timestamp.

        Raises :class:`WriteIntentError` when another transaction holds
        an intent on the key.  Raises :class:`WriteTooOldError` when a
        committed version exists at or above ``ts`` (the caller bumps
        the write timestamp and retries).
        """
        history = self._data.get(key)
        if history is None:
            return ts
        intent = history.intent
        if intent is not None and intent.txn_id != txn_id:
            raise WriteIntentError(key, intent.txn_id, intent.ts)
        phys = history.phys
        if phys:
            newest_p = phys[-1]
            if newest_p > ts.physical or (
                    newest_p == ts.physical
                    and history.logs[-1] >= ts.logical):
                raise WriteTooOldError(
                    key, history.ts_at(len(phys) - 1), ts)
        return ts

    def put_intent(self, key: Any, ts: Timestamp, value: Any, txn_id: int,
                   anchor_node_id: int = -1) -> None:
        """Lay down (or replace this transaction's own) intent."""
        history = self._history(key)
        intent = history.intent
        if intent is not None and intent.txn_id != txn_id:
            raise WriteIntentError(key, intent.txn_id, intent.ts)
        self._count("mvcc.intents_laid")
        history.intent = Intent(txn_id=txn_id, ts=ts, value=value,
                                anchor_node_id=anchor_node_id)

    def resolve_intent(self, key: Any, txn_id: int,
                       commit_ts: Optional[Timestamp]) -> bool:
        """Commit (at ``commit_ts``) or abort (``None``) an intent.

        Returns True if an intent belonging to ``txn_id`` was resolved.
        Intent resolution is idempotent: replicas may apply it after the
        intent is already gone.
        """
        history = self._data.get(key)
        if history is None or history.intent is None:
            return False
        if history.intent.txn_id != txn_id:
            return False
        intent = history.intent
        history.intent = None
        self._count("mvcc.intents_resolved")
        if commit_ts is not None:
            history.insert_at(commit_ts, intent.value)
        return True

    def put_committed(self, key: Any, ts: Timestamp, value: Any) -> None:
        """Directly write a committed version (bulk loads, test fixtures)."""
        self._history(key).insert_at(ts, value)

    def clone(self) -> "MVCCStore":
        """A deep copy of this store (Raft snapshot transfer).

        The packed columns are value arrays, so slicing duplicates the
        already-sorted history representation wholesale — nothing is
        re-encoded or re-sorted, and payload objects are shared.
        """
        other = MVCCStore(registry=self.registry)
        data = other._data
        for key, history in self._data.items():
            copied = _KeyHistory()
            copied.phys = history.phys[:]
            copied.logs = history.logs[:]
            copied.synth = history.synth[:]
            copied.values = history.values[:]
            intent = history.intent
            if intent is not None:
                copied.intent = Intent(
                    txn_id=intent.txn_id, ts=intent.ts, value=intent.value,
                    anchor_node_id=intent.anchor_node_id)
            data[key] = copied
        return other

    # -- range splits / merges ----------------------------------------------

    def extract(self, pred) -> Dict[Any, _KeyHistory]:
        """Remove and return every key history for which ``pred(key)``.

        Used by range splits/merges to move whole histories (committed
        versions *and* any applied intent) between the stores of two
        colocated replicas without copying or re-sorting anything.
        """
        moved: Dict[Any, _KeyHistory] = {}
        for key in [k for k in self._data if pred(k)]:
            moved[key] = self._data.pop(key)
        return moved

    def absorb(self, histories: Dict[Any, _KeyHistory]) -> None:
        """Adopt key histories produced by :meth:`extract`.

        The source and destination spans are disjoint by construction
        (a split point partitions the keyspace), so collisions indicate
        a bug and fail loudly.
        """
        for key, history in histories.items():
            if key in self._data:
                raise ValueError(f"absorb collision on key {key!r}")
            self._data[key] = history

    # -- introspection -------------------------------------------------------

    def keys(self) -> Iterable[Any]:
        """Live view of the stored keys (iteration order = insertion
        order).  A view, not a list: callers that only iterate or sort
        should not pay for a copy."""
        return self._data.keys()

    def version_count(self, key: Any) -> int:
        history = self._data.get(key)
        return len(history.phys) if history else 0

    def snapshot_at(self, ts: Timestamp) -> Dict[Any, Any]:
        """The committed state visible at ``ts`` (tests/debugging)."""
        out = {}
        for key, history in self._data.items():
            version = history.newest_at_or_below(ts)
            if version is not None and not version.is_tombstone:
                out[key] = version.value
        return out
