"""Multi-version concurrency control storage.

Each replica of a Range owns one :class:`MVCCStore`.  The store keeps,
per key, a list of committed versions (newest first) plus at most one
*write intent* — a provisional version laid down by an in-flight
transaction.  Raft applies the same logical commands to every replica's
store, so followers hold the data needed for follower reads.

The read path implements the paper's visibility rules:

* a read at ``ts`` returns the newest committed version ``<= ts``;
* an intent from another transaction at ``<= ts`` forces conflict
  resolution (:class:`~repro.errors.WriteIntentError`);
* a committed value or intent in ``(ts, ts + uncertainty]`` forces an
  uncertainty restart
  (:class:`~repro.errors.ReadWithinUncertaintyIntervalError`).
"""

from __future__ import annotations

from bisect import bisect_right, insort_right
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ..errors import (
    ReadWithinUncertaintyIntervalError,
    WriteIntentError,
    WriteTooOldError,
)
from ..sim.clock import TS_ZERO, Timestamp

__all__ = ["MVCCStore", "Version", "Intent", "ReadResult"]


@dataclass(frozen=True, slots=True)
class Version:
    """A committed MVCC version of a key."""

    ts: Timestamp
    value: Any

    @property
    def is_tombstone(self) -> bool:
        return self.value is None


@dataclass(slots=True)
class Intent:
    """A provisional write by an in-flight transaction."""

    txn_id: int
    ts: Timestamp
    value: Any
    #: Node holding the transaction record (for conflict resolution).
    anchor_node_id: int = -1


@dataclass(frozen=True, slots=True)
class ReadResult:
    """Value returned by an MVCC read."""

    value: Any
    ts: Timestamp
    from_intent: bool = False

    @property
    def exists(self) -> bool:
        return self.value is not None


class _KeyHistory:
    """Version history of one key: ``versions`` sorted by timestamp
    ascending, with the parallel ``tss`` timestamp list kept in lockstep
    so every lookup is a direct bisect (no per-call key-list rebuild,
    which dominated the read path's profile)."""

    __slots__ = ("versions", "tss", "intent")

    def __init__(self):
        self.versions: List[Version] = []
        self.tss: List[Timestamp] = []
        self.intent: Optional[Intent] = None

    def newest_at_or_below(self, ts: Timestamp) -> Optional[Version]:
        idx = bisect_right(self.tss, ts)
        if idx == 0:
            return None
        return self.versions[idx - 1]

    def newest(self) -> Optional[Version]:
        return self.versions[-1] if self.versions else None

    def any_in_interval(self, lo: Timestamp, hi: Timestamp) -> Optional[Version]:
        """Newest committed version with ``lo < ts <= hi``, if any."""
        idx = bisect_right(self.tss, hi)
        if idx == 0:
            return None
        candidate = self.versions[idx - 1]
        return candidate if candidate.ts > lo else None

    def insert_version(self, version: Version) -> None:
        idx = bisect_right(self.tss, version.ts)
        self.versions.insert(idx, version)
        self.tss.insert(idx, version.ts)


class MVCCStore:
    """Versioned key-value state for one replica of one Range.

    ``registry`` (attached by the owning :class:`~repro.kv.replica.Replica`)
    mirrors storage activity onto the shared metrics registry; the store
    itself stays constructible without a simulator for unit tests.
    """

    def __init__(self, registry=None):
        self._data: Dict[Any, _KeyHistory] = {}
        self.registry = registry
        #: Lazily-cached counter handles — one registry lookup per name
        #: per store, not per operation.
        self._counters: Dict[str, Any] = {}

    def _count(self, name: str) -> None:
        if self.registry is not None:
            counter = self._counters.get(name)
            if counter is None:
                counter = self._counters[name] = self.registry.counter(name)
            counter.inc()

    def _history(self, key: Any) -> _KeyHistory:
        history = self._data.get(key)
        if history is None:
            history = _KeyHistory()
            self._data[key] = history
        return history

    # -- reads -------------------------------------------------------------

    def get(self, key: Any, ts: Timestamp, txn_id: Optional[int] = None,
            uncertainty_limit: Optional[Timestamp] = None) -> ReadResult:
        """Read ``key`` at ``ts``.

        ``txn_id`` lets a transaction read its own intents.
        ``uncertainty_limit`` is the upper bound of the reader's
        uncertainty interval; values in ``(ts, limit]`` raise
        :class:`ReadWithinUncertaintyIntervalError`.
        """
        self._count("mvcc.gets")
        history = self._data.get(key)
        if history is None:
            return ReadResult(None, TS_ZERO)

        intent = history.intent
        if intent is not None:
            if txn_id is not None and intent.txn_id == txn_id:
                # Read-your-writes: a transaction sees its own intent.
                return ReadResult(intent.value, intent.ts, from_intent=True)
            if intent.ts <= ts:
                raise WriteIntentError(key, intent.txn_id, intent.ts)
            if uncertainty_limit is not None and intent.ts <= uncertainty_limit:
                # An uncertain intent is both uncertain and unresolved;
                # surface the intent conflict so the reader waits for the
                # writer, then retries with a bumped timestamp.
                raise WriteIntentError(key, intent.txn_id, intent.ts)

        if uncertainty_limit is not None:
            uncertain = history.any_in_interval(ts, uncertainty_limit)
            if uncertain is not None:
                raise ReadWithinUncertaintyIntervalError(key, uncertain.ts, ts)

        version = history.newest_at_or_below(ts)
        if version is None or version.is_tombstone:
            return ReadResult(None, version.ts if version else TS_ZERO)
        return ReadResult(version.value, version.ts)

    def intent_for(self, key: Any) -> Optional[Intent]:
        history = self._data.get(key)
        return history.intent if history else None

    def newest_version_ts(self, key: Any) -> Timestamp:
        history = self._data.get(key)
        if history is None or not history.versions:
            return TS_ZERO
        return history.versions[-1].ts

    def changed_in_interval(self, key: Any, lo: Timestamp, hi: Timestamp,
                            txn_id: Optional[int] = None) -> bool:
        """Did ``key`` gain a committed version or foreign intent in
        ``(lo, hi]``?  Used by read refreshes (paper §5.1 / §6.2)."""
        history = self._data.get(key)
        if history is None:
            return False
        if history.any_in_interval(lo, hi) is not None:
            return True
        intent = history.intent
        if intent is not None and intent.txn_id != txn_id and intent.ts <= hi:
            return True
        return False

    # -- writes ------------------------------------------------------------

    def check_write(self, key: Any, ts: Timestamp,
                    txn_id: int) -> Timestamp:
        """Validate a proposed write; returns the minimum legal timestamp.

        Raises :class:`WriteIntentError` when another transaction holds
        an intent on the key.  Raises :class:`WriteTooOldError` when a
        committed version exists at or above ``ts`` (the caller bumps
        the write timestamp and retries).
        """
        history = self._data.get(key)
        if history is None:
            return ts
        intent = history.intent
        if intent is not None and intent.txn_id != txn_id:
            raise WriteIntentError(key, intent.txn_id, intent.ts)
        newest = history.newest()
        if newest is not None and newest.ts >= ts:
            raise WriteTooOldError(key, newest.ts, ts)
        return ts

    def put_intent(self, key: Any, ts: Timestamp, value: Any, txn_id: int,
                   anchor_node_id: int = -1) -> None:
        """Lay down (or replace this transaction's own) intent."""
        history = self._history(key)
        intent = history.intent
        if intent is not None and intent.txn_id != txn_id:
            raise WriteIntentError(key, intent.txn_id, intent.ts)
        self._count("mvcc.intents_laid")
        history.intent = Intent(txn_id=txn_id, ts=ts, value=value,
                                anchor_node_id=anchor_node_id)

    def resolve_intent(self, key: Any, txn_id: int,
                       commit_ts: Optional[Timestamp]) -> bool:
        """Commit (at ``commit_ts``) or abort (``None``) an intent.

        Returns True if an intent belonging to ``txn_id`` was resolved.
        Intent resolution is idempotent: replicas may apply it after the
        intent is already gone.
        """
        history = self._data.get(key)
        if history is None or history.intent is None:
            return False
        if history.intent.txn_id != txn_id:
            return False
        intent = history.intent
        history.intent = None
        self._count("mvcc.intents_resolved")
        if commit_ts is not None:
            history.insert_version(Version(ts=commit_ts, value=intent.value))
        return True

    def put_committed(self, key: Any, ts: Timestamp, value: Any) -> None:
        """Directly write a committed version (bulk loads, test fixtures)."""
        self._history(key).insert_version(Version(ts=ts, value=value))

    def clone(self) -> "MVCCStore":
        """A deep copy of this store (Raft snapshot transfer).

        Version objects are immutable, so the copy shares them and only
        duplicates the per-key list pair — the already-sorted history
        representation is reused as-is, never rebuilt.
        """
        other = MVCCStore(registry=self.registry)
        data = other._data
        for key, history in self._data.items():
            copied = _KeyHistory()
            copied.versions = history.versions[:]
            copied.tss = history.tss[:]
            intent = history.intent
            if intent is not None:
                copied.intent = Intent(
                    txn_id=intent.txn_id, ts=intent.ts, value=intent.value,
                    anchor_node_id=intent.anchor_node_id)
            data[key] = copied
        return other

    # -- range splits / merges ----------------------------------------------

    def extract(self, pred) -> Dict[Any, _KeyHistory]:
        """Remove and return every key history for which ``pred(key)``.

        Used by range splits/merges to move whole histories (committed
        versions *and* any applied intent) between the stores of two
        colocated replicas without copying or re-sorting anything.
        """
        moved: Dict[Any, _KeyHistory] = {}
        for key in [k for k in self._data if pred(k)]:
            moved[key] = self._data.pop(key)
        return moved

    def absorb(self, histories: Dict[Any, _KeyHistory]) -> None:
        """Adopt key histories produced by :meth:`extract`.

        The source and destination spans are disjoint by construction
        (a split point partitions the keyspace), so collisions indicate
        a bug and fail loudly.
        """
        for key, history in histories.items():
            if key in self._data:
                raise ValueError(f"absorb collision on key {key!r}")
            self._data[key] = history

    # -- introspection -------------------------------------------------------

    def keys(self) -> Iterable[Any]:
        """Live view of the stored keys (iteration order = insertion
        order).  A view, not a list: callers that only iterate or sort
        should not pay for a copy."""
        return self._data.keys()

    def version_count(self, key: Any) -> int:
        history = self._data.get(key)
        return len(history.versions) if history else 0

    def snapshot_at(self, ts: Timestamp) -> Dict[Any, Any]:
        """The committed state visible at ``ts`` (tests/debugging)."""
        out = {}
        for key, history in self._data.items():
            version = history.newest_at_or_below(ts)
            if version is not None and not version.is_tombstone:
                out[key] = version.value
        return out
