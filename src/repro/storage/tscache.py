"""Timestamp cache: the read-side memory used for serializability.

The leaseholder records the maximum timestamp at which each key has been
read (or refreshed).  A later write to that key must commit at a higher
timestamp, preventing it from invalidating a read that already returned
(paper §6.1: "Leaseholders also advance the timestamp of writes above
the timestamp of any previously served reads...").

Entries carry the reading transaction's id (as in CRDB) so a
transaction's own reads never force its writes to higher timestamps —
without this, every read-modify-write would pay a needless refresh.  To
stay sound with many readers, each key tracks both the overall maximum
read and the maximum read by any *other* transaction than that one.

The cache carries a *low-water mark*: when a new leaseholder takes over
it initialises the mark to its lease start so reads served by prior
leaseholders stay protected without shipping the cache.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..sim.clock import TS_ZERO, Timestamp

__all__ = ["TimestampCache"]


class _Entry:
    """Top read timestamp (with its reader) plus the runner-up by any
    other reader — enough to answer "max read by anyone but txn X"."""

    __slots__ = ("top_ts", "top_txn", "other_ts")

    def __init__(self, ts: Timestamp, txn_id: Optional[int]):
        self.top_ts = ts
        self.top_txn = txn_id
        self.other_ts = TS_ZERO

    def record(self, ts: Timestamp, txn_id: Optional[int]) -> None:
        if txn_id is not None and txn_id == self.top_txn:
            if ts > self.top_ts:
                self.top_ts = ts
            return
        if ts > self.top_ts:
            self.other_ts = max(self.other_ts, self.top_ts)
            self.top_ts = ts
            self.top_txn = txn_id
        elif ts > self.other_ts:
            self.other_ts = ts

    def floor_for(self, txn_id: Optional[int]) -> Timestamp:
        if txn_id is not None and txn_id == self.top_txn:
            return self.other_ts
        return self.top_ts


class TimestampCache:
    """Per-key high-water marks of served reads."""

    def __init__(self, low_water: Timestamp = TS_ZERO):
        self._low_water = low_water
        self._by_key: Dict[Any, _Entry] = {}

    @property
    def low_water(self) -> Timestamp:
        return self._low_water

    def record_read(self, key: Any, ts: Timestamp,
                    txn_id: Optional[int] = None) -> None:
        entry = self._by_key.get(key)
        if entry is None:
            self._by_key[key] = _Entry(ts, txn_id)
        else:
            entry.record(ts, txn_id)

    def high_water(self, key: Any) -> Timestamp:
        entry = self._by_key.get(key)
        ts = entry.top_ts if entry else TS_ZERO
        return max(ts, self._low_water)

    def raise_low_water(self, ts: Timestamp) -> None:
        """Advance the low-water mark (lease transfers, cache rotation)."""
        if ts > self._low_water:
            self._low_water = ts
            stale = [k for k, v in self._by_key.items() if v.top_ts <= ts]
            for key in stale:
                del self._by_key[key]

    def min_write_ts(self, key: Any, proposed: Timestamp,
                     txn_id: Optional[int] = None) -> Timestamp:
        """The lowest timestamp a write to ``key`` may use.

        A write must exceed every read of the key by *other*
        transactions; the writer's own reads do not count against it.
        """
        entry = self._by_key.get(key)
        floor = self._low_water
        if entry is not None:
            entry_floor = entry.floor_for(txn_id)
            if entry_floor > floor:
                floor = entry_floor
        if proposed > floor:
            return proposed
        return floor.next()
