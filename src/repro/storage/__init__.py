"""MVCC storage engine: versioned values, intents, timestamp cache."""

from .locktable import LockHolder, LockTable
from .mvcc import Intent, MVCCStore, ReadResult, Version
from .tscache import TimestampCache

__all__ = [
    "Intent",
    "LockHolder",
    "LockTable",
    "MVCCStore",
    "ReadResult",
    "TimestampCache",
    "Version",
]
