"""Lock wait-queues for intent conflicts.

When a request encounters another transaction's intent it queues here;
the queue is drained when the intent is resolved (committed or aborted).
This models CockroachDB's lock table / contention handling on the
leaseholder: conflicting readers and writers block until the holder
finishes, which is exactly the behaviour responsible for the contended
tails measured in Fig 5.

A coarse wait-for check aborts waiters whose wait would form a cycle
(deadlock), standing in for CRDB's distributed deadlock detection.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Set

from ..errors import TransactionAbortedError
from ..sim.clock import Timestamp
from ..sim.core import Future, Simulator

__all__ = ["LockTable", "LockHolder", "WaitGraph"]


@dataclass(frozen=True)
class LockHolder:
    """The transaction currently holding the lock on a key."""

    txn_id: int
    ts: Timestamp


class WaitGraph:
    """Cluster-global transaction wait-for edges.

    Lock tables are per-range, but deadlock cycles span ranges (e.g.
    two multi-range writers acquiring locks in opposite orders), so the
    wait-for graph must be shared — this models CRDB's distributed
    deadlock detection.  A transaction may wait on several holders at
    once (parallel batch writes), hence edge *sets*."""

    def __init__(self):
        #: waiting txn -> set of holder txns
        self._edges: Dict[int, Set[int]] = {}

    def would_cycle(self, waiter: int, holder: int) -> bool:
        """Would adding waiter->holder close a cycle (holder ~> waiter)?"""
        seen: Set[int] = set()
        stack = [holder]
        while stack:
            current = stack.pop()
            if current == waiter:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self._edges.get(current, ()))
        return False

    def add_edge(self, waiter: int, holder: int) -> None:
        self._edges.setdefault(waiter, set()).add(holder)

    def remove_edge(self, waiter: int, holder: int) -> None:
        edges = self._edges.get(waiter)
        if edges is not None:
            edges.discard(holder)
            if not edges:
                del self._edges[waiter]


class LockTable:
    """Per-range registry of waiters blocked on intents."""

    def __init__(self, sim: Simulator, wait_graph: Optional[WaitGraph] = None):
        self.sim = sim
        #: key -> list of (waiting_txn_id, future)
        self._waiters: Dict[Any, List] = {}
        #: key -> current holder (covers both in-flight proposals and
        #: applied intents, keeping evaluation-time latching and
        #: replicated locks in one structure)
        self._holders: Dict[Any, LockHolder] = {}
        self._graph = wait_graph if wait_graph is not None else WaitGraph()

    def note_holder(self, key: Any, txn_id: int, ts: Timestamp) -> None:
        self._holders[key] = LockHolder(txn_id=txn_id, ts=ts)

    def holder_of(self, key: Any) -> Optional[LockHolder]:
        return self._holders.get(key)

    def wait_for(self, key: Any, waiter_txn_id: Optional[int]) -> Future:
        """Block until the intent on ``key`` is resolved.

        Rejects with :class:`TransactionAbortedError` if waiting would
        create a deadlock cycle, even across ranges (the request that
        closes the cycle loses).
        """
        fut = Future(self.sim)
        holder = self._holders.get(key)
        if holder is None:
            fut.resolve(None)
            return fut
        registry = self.sim.obs.registry
        if waiter_txn_id is not None:
            if self._graph.would_cycle(waiter_txn_id, holder.txn_id):
                registry.counter("lock.deadlocks").inc()
                fut.reject(TransactionAbortedError(
                    f"deadlock: txn {waiter_txn_id} waiting on {holder.txn_id}"))
                return fut
            self._graph.add_edge(waiter_txn_id, holder.txn_id)
        registry.counter("lock.waits").inc()
        self._waiters.setdefault(key, []).append((waiter_txn_id, fut, holder.txn_id))
        return fut

    def release(self, key: Any, txn_id: int) -> None:
        """The intent on ``key`` held by ``txn_id`` has been resolved."""
        holder = self._holders.get(key)
        if holder is not None and holder.txn_id == txn_id:
            del self._holders[key]
        waiters = self._waiters.pop(key, [])
        for waiter_txn_id, fut, held_by in waiters:
            if waiter_txn_id is not None:
                self._graph.remove_edge(waiter_txn_id, held_by)
            if not fut.done:
                fut.resolve(None)

    def cancel_wait(self, key: Any, waiter_txn_id: int) -> None:
        """A waiter aborted while queued: drop its entry and wait-for
        edges for ``key`` so a stale edge cannot fabricate a deadlock
        cycle against transactions that are no longer waiting."""
        waiters = self._waiters.get(key)
        if not waiters:
            return
        remaining = []
        for entry in waiters:
            entry_txn_id, fut, held_by = entry
            if entry_txn_id == waiter_txn_id:
                self._graph.remove_edge(entry_txn_id, held_by)
                if not fut.done:
                    fut.reject(TransactionAbortedError(
                        f"txn {waiter_txn_id} abandoned its wait on {key!r}"))
            else:
                remaining.append(entry)
        if remaining:
            self._waiters[key] = remaining
        else:
            del self._waiters[key]

    def waiter_count(self, key: Any) -> int:
        return len(self._waiters.get(key, []))

    def is_quiescent(self) -> bool:
        """No holders and no waiters: nothing in-flight straddles this
        range (merge-safety precondition)."""
        return not self._holders and not self._waiters

    def move_entries(self, pred, other: "LockTable") -> None:
        """Move holders and wait-queues for keys matching ``pred`` to
        ``other`` (a range split moving locked keys to the child range).

        Waiter futures and wait-for-graph edges move untouched — the
        blocked coroutines keep sleeping on the same futures and are
        released when the intent resolution applies on the new owner.
        """
        for key in [k for k in self._holders if pred(k)]:
            other._holders[key] = self._holders.pop(key)
        for key in [k for k in self._waiters if pred(k)]:
            other._waiters.setdefault(key, []).extend(
                self._waiters.pop(key))
