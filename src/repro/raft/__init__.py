"""Raft-style replication: quorum commit, learners, closed timestamps."""

from .group import PeerState, RaftGroup, ReplicaType
from .log import Entry

__all__ = ["Entry", "PeerState", "RaftGroup", "ReplicaType"]
