"""Raft-style replication: quorum commit, learners, closed timestamps."""

from .group import PeerState, RaftGroup, ReplicaType
from .log import Entry
from .membership import ConfigChangeError, ConfigChangeGuard

__all__ = [
    "ConfigChangeError",
    "ConfigChangeGuard",
    "Entry",
    "PeerState",
    "RaftGroup",
    "ReplicaType",
]
