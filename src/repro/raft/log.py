"""Raft log entries.

Every entry carries the command to apply plus the *closed timestamp*
assigned by the leaseholder at proposal time.  Serializing closed
timestamps into the replication stream is how followers learn them
(paper §5.1.1: "These promises are serialized into the Range's
replication stream by piggy-backing onto Raft commands").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..sim.clock import Timestamp

__all__ = ["Entry"]


@dataclass(frozen=True)
class Entry:
    """One replicated log entry."""

    index: int
    term: int
    command: Any
    closed_ts: Timestamp
