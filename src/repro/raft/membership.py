"""One-at-a-time Raft membership-change discipline.

CockroachDB (like etcd/raft) serializes configuration changes: at most
one replica may be entering or leaving a range's configuration at any
moment.  Overlapping changes are where classic quorum-loss bugs live —
two "safe" single changes composed concurrently can leave a joint
majority that no longer exists.  The :class:`ConfigChangeGuard` is the
simulation's enforcement point: every mutation of a group's membership
(learner add, promotion, demotion, removal — including the instant
snapshot-shortcut paths) must hold the guard for its duration, and a
second acquisition while one is outstanding raises instead of queueing,
surfacing the violation loudly in tests.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..errors import DatabaseError

__all__ = ["ConfigChangeError", "ConfigChangeGuard"]


class ConfigChangeError(DatabaseError):
    """A membership change violated the one-at-a-time/quorum rules."""


class ConfigChangeGuard:
    """Mutual exclusion for a single group's config changes.

    Not a lock that callers wait on: a conflicting acquire *raises*.
    Replica-repair code paths are expected to observe the conflict and
    retry on their next scan; silently queueing would hide the very
    interleavings the one-at-a-time rule exists to prevent.
    """

    def __init__(self, range_id: int):
        self.range_id = range_id
        self._holder: Optional[str] = None
        #: Total completed config changes (for tests/metrics).
        self.changes = 0
        #: High-water mark of concurrently held changes (must stay <= 1).
        self.max_inflight = 0
        #: (description, start_ms, end_ms) completed-change log.
        self.history: List[Tuple[str, float, float]] = []
        self._started_at = 0.0

    @property
    def in_flight(self) -> Optional[str]:
        return self._holder

    def acquire(self, description: str, now_ms: float = 0.0) -> None:
        if self._holder is not None:
            raise ConfigChangeError(
                f"r{self.range_id}: config change {description!r} while "
                f"{self._holder!r} is still in flight")
        self._holder = description
        self._started_at = now_ms
        self.max_inflight = max(self.max_inflight, 1)

    def release(self, now_ms: float = 0.0) -> None:
        if self._holder is None:
            raise ConfigChangeError(
                f"r{self.range_id}: release without an in-flight change")
        self.history.append((self._holder, self._started_at, now_ms))
        self._holder = None
        self.changes += 1
