"""A Raft group: one per Range.

Faithful to the latency-relevant behaviour of etcd/raft as used by
CockroachDB:

* The leader appends to its local log (small disk latency), streams the
  entry to every peer, and commits once a *quorum of voters* has
  acknowledged — learners (non-voting replicas, paper §5.2) receive the
  log but never count toward quorum and therefore never affect write
  latency.
* Followers apply an entry only once they know it is committed; the
  leader broadcasts commit-index advances, so the time for an entry to
  apply on the furthest follower is the paper's ``L_replicate``.
* Each entry carries a closed timestamp; a follower's local closed
  timestamp is the maximum over applied entries, optionally refreshed by
  an idle-range side-transport heartbeat.

Leadership is stable (no randomized election timers): the placement
layer assigns leadership/leases explicitly, and failover is modelled by
``transfer_leadership``.  This keeps experiments deterministic while
still letting failure tests exercise quorum loss and recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import RangeUnavailableError
from ..sim.clock import TS_ZERO, Timestamp
from ..sim.core import Future, Simulator
from .log import Entry
from .membership import ConfigChangeError, ConfigChangeGuard

__all__ = ["RaftGroup", "PeerState", "ReplicaType"]


class ReplicaType:
    """Replica roles within a group."""

    VOTER = "voter"
    NON_VOTER = "non_voter"  # Raft learner


@dataclass
class PeerState:
    """The per-replica Raft state living on one node."""

    node: Any
    replica_type: str
    log: List[Entry] = field(default_factory=list)
    applied_index: int = 0
    closed_ts: Timestamp = TS_ZERO
    #: Out-of-order appends, keyed by index: (entry, predecessor).
    _staged: Dict[int, Any] = field(default_factory=dict)
    #: Highest commit index this peer has heard of.
    known_commit_index: int = 0

    @property
    def last_index(self) -> int:
        return self.log[-1].index if self.log else 0

    @property
    def last_term(self) -> int:
        return self.log[-1].term if self.log else 0

    def stage(self, entry: Entry, prev: Optional[Entry] = None,
              authoritative: bool = False) -> None:
        """Stage an appended entry; append once contiguous.

        ``prev`` is the sender's log entry immediately before ``entry``
        (Raft's AppendEntries consistency check): an entry only chains
        onto a log whose tail *is* that predecessor, so replicas can
        never build a log mixing stale and current-term suffixes.

        ``authoritative`` marks a delivery from the *current* leader at
        the *current* term.  Only such a delivery may overwrite a
        conflicting suffix (Raft's log-matching repair); anything else
        — a delayed append from a deposed leader — must not clobber the
        log the current leader is building.
        """
        log = self.log
        if entry.index <= (log[-1].index if log else 0):
            existing = log[entry.index - 1]
            if existing is entry:
                return  # duplicate delivery of an entry we already hold
            if entry.index <= max(self.applied_index,
                                  self.known_commit_index):
                # Known-committed entries are immutable even before they
                # are applied: rewriting one would let _apply_ready feed
                # the wrong branch's command to the state machine.
                return
            if not authoritative:
                return  # stale sender may never rewrite a suffix
            if prev is not (self.log[entry.index - 2]
                            if entry.index >= 2 else None):
                return  # predecessor mismatch: wait for a deeper resync
            # Conflicting suffix was never committed — truncate, take
            # the current leader's entry instead.
            del self.log[entry.index - 1:]
        staged = self._staged.get(entry.index)
        if staged is None or authoritative:
            self._staged[entry.index] = (entry, prev)
        get_staged = self._staged.get
        while True:
            tail = log[-1] if log else None
            nxt = get_staged((tail.index if tail is not None else 0) + 1)
            if nxt is None:
                break
            nxt_entry, nxt_prev = nxt
            if nxt_prev is not tail:
                break  # predecessor mismatch: wait for a resync
            log.append(nxt_entry)
            del self._staged[nxt_entry.index]


class RaftGroup:
    """Replication state machine for a single Range."""

    #: Simulated local storage append latency per entry (ms).
    DISK_APPEND_MS = 0.25

    def __init__(self, sim: Simulator, network, range_id: int,
                 apply_fn: Callable[[Any, Any], None],
                 proposal_timeout_ms: Optional[float] = None,
                 coalesce_ms: Optional[float] = None):
        """``apply_fn(peer_node, command)`` applies a committed command to
        the replica state on ``peer_node``.

        ``coalesce_ms`` enables per-follower message coalescing: appends,
        commit-index advances and closed-timestamp heartbeats produced
        within one window travel as a single batched message per peer
        (GeoGauss-style replication batching).  None disables it, which
        keeps the message schedule — and therefore every downstream
        jitter draw — identical to the uncoalesced protocol.
        """
        self.sim = sim
        self.network = network
        self.range_id = range_id
        self.apply_fn = apply_fn
        self.proposal_timeout_ms = proposal_timeout_ms
        self.coalesce_ms = coalesce_ms
        #: (leader_node_id, peer_node_id) -> pending batch (created
        #: lazily per window; flushed ``coalesce_ms`` after creation).
        self._outbox: Dict[Any, Dict[str, Any]] = {}
        self.term = 1
        self.leader_node_id: Optional[int] = None
        self.peers: Dict[int, PeerState] = {}
        self.commit_index = 0
        self._next_index = 1
        #: index -> (future, acks set)
        self._inflight: Dict[int, Any] = {}
        self.proposals_committed = 0
        #: The entry at the current commit index (leader completeness).
        self._last_committed: Optional[Entry] = None
        #: One-at-a-time membership-change enforcement.
        self.config_guard = ConfigChangeGuard(range_id)
        #: Per-range instrument handles, resolved lazily on first use so
        #: the set of registered instruments matches lazy registration.
        self._c_proposals = None
        self._c_rejected = None
        self._h_commit_ms = None
        self._c_commits = None

    # -- membership --------------------------------------------------------

    def add_peer(self, node, replica_type: str) -> PeerState:
        """Instant-snapshot membership add (provisioning shortcut).

        Counts as a complete config change: it conflicts with any
        long-running learner/snapshot change already in flight.
        """
        self.config_guard.acquire(f"add-{replica_type}@n{node.node_id}",
                                  self.sim.now)
        try:
            peer = PeerState(node=node, replica_type=replica_type)
            # New peers catch up from the leader's log (snapshot shortcut).
            if self.leader_node_id is not None:
                leader = self.peers[self.leader_node_id]
                peer.log = list(leader.log)
                peer.applied_index = leader.applied_index
                peer.closed_ts = leader.closed_ts
                peer.known_commit_index = self.commit_index
            self.peers[node.node_id] = peer
            return peer
        finally:
            self.config_guard.release(self.sim.now)

    def remove_peer(self, node_id: int) -> None:
        self.config_guard.acquire(f"remove@n{node_id}", self.sim.now)
        try:
            self.peers.pop(node_id, None)
        finally:
            self.config_guard.release(self.sim.now)

    # Guardless primitives below are the building blocks of the safe
    # learner → snapshot → promote pipeline; the *composite* operation
    # (Range.add_replica_safely) holds the config guard across the whole
    # multi-step change, so the primitives must not re-acquire it.

    def add_learner(self, node) -> PeerState:
        """Join as an empty learner: receives the live stream but holds
        no data until :meth:`install_snapshot` lands."""
        if node.node_id in self.peers:
            raise ConfigChangeError(
                f"r{self.range_id}: node {node.node_id} is already a member")
        peer = PeerState(node=node, replica_type=ReplicaType.NON_VOTER)
        self.peers[node.node_id] = peer
        return peer

    def install_snapshot(self, node_id: int) -> int:
        """Complete a leader-driven snapshot transfer onto a learner.

        Copies the leader's log (entry identity preserved, so later
        appends chain), applied index, closed timestamp, and commit
        knowledge, then drains any live-stream entries that arrived
        while the snapshot was in transit.  Returns the peer's new last
        index.  The caller is responsible for having moved the state
        machine (the MVCC store) alongside.
        """
        leader = self.leader
        peer = self.peers.get(node_id)
        if peer is None:
            raise ConfigChangeError(
                f"r{self.range_id}: snapshot for non-member {node_id}")
        self.sim.obs.registry.counter("raft.snapshots_installed",
                                      range=self.range_id).inc()
        peer.log = list(leader.log)
        peer.applied_index = leader.applied_index
        peer.closed_ts = leader.closed_ts
        peer.known_commit_index = max(peer.known_commit_index,
                                      self.commit_index)
        # Entries the live stream delivered during the transfer: drop
        # what the snapshot already covers, chain the rest.
        peer._staged = {i: s for i, s in peer._staged.items()
                        if i > peer.last_index}
        while True:
            nxt = peer._staged.get(peer.last_index + 1)
            if nxt is None:
                break
            nxt_entry, nxt_prev = nxt
            tail = peer.log[-1] if peer.log else None
            if nxt_prev is not tail:
                break
            peer.log.append(nxt_entry)
            del peer._staged[nxt_entry.index]
        self._apply_ready(peer)
        return peer.last_index

    def promote_learner(self, node_id: int) -> PeerState:
        """Promote a caught-up learner to voter.

        Refuses if the learner misses committed entries (promoting it
        would let an incomplete log into the electorate) or if the
        promotion would leave the *new* voter set without a live quorum.
        """
        peer = self.peers.get(node_id)
        if peer is None or peer.replica_type != ReplicaType.NON_VOTER:
            raise ConfigChangeError(
                f"r{self.range_id}: node {node_id} is not a learner")
        if peer.last_index < self.commit_index or not self.log_complete(peer):
            raise ConfigChangeError(
                f"r{self.range_id}: learner {node_id} not caught up "
                f"(at {peer.last_index}, commit {self.commit_index})")
        peer.replica_type = ReplicaType.VOTER
        if not self.has_quorum():
            peer.replica_type = ReplicaType.NON_VOTER
            raise ConfigChangeError(
                f"r{self.range_id}: promoting {node_id} would enlarge the "
                f"voter set beyond its live quorum")
        return peer

    def demote_voter(self, node_id: int) -> PeerState:
        """Voter → learner (the first half of a safe voter removal)."""
        peer = self.peers.get(node_id)
        if peer is None or peer.replica_type != ReplicaType.VOTER:
            raise ConfigChangeError(
                f"r{self.range_id}: node {node_id} is not a voter")
        if node_id == self.leader_node_id:
            raise ConfigChangeError(
                f"r{self.range_id}: cannot demote the leader")
        if not self.would_retain_quorum_without(node_id):
            raise ConfigChangeError(
                f"r{self.range_id}: demoting {node_id} would lose quorum")
        peer.replica_type = ReplicaType.NON_VOTER
        return peer

    def would_retain_quorum_without(self, node_id: int) -> bool:
        """Would the voter set minus ``node_id`` still have a live quorum?"""
        remaining = [p for p in self.voters() if p.node.node_id != node_id]
        if not remaining:
            return False
        quorum = len(remaining) // 2 + 1
        live = sum(1 for p in remaining
                   if not self.network.node_is_dead(p.node.node_id))
        return live >= quorum

    def set_leader(self, node_id: int) -> None:
        if node_id not in self.peers:
            raise RangeUnavailableError(
                f"r{self.range_id}: node {node_id} is not a member")
        if self.peers[node_id].replica_type != ReplicaType.VOTER:
            raise RangeUnavailableError(
                f"r{self.range_id}: non-voter {node_id} cannot lead")
        self.leader_node_id = node_id

    def transfer_leadership(self, node_id: int) -> None:
        """Move leadership (used for lease transfers and failover)."""
        self.term += 1
        self.set_leader(node_id)

    def fail_over(self, node_id: Optional[int] = None) -> int:
        """Elect a new leader after losing the old one.

        Candidates are live voters; per Raft's leader-completeness
        argument the one with the longest log wins (ties break to the
        lowest node id for determinism).  Proposals the new leader never
        received are rejected (their clients retry); its uncommitted
        tail is re-driven under the new term so the commit index can
        keep advancing.  Returns the new leader's node id.
        """
        if node_id is not None:
            candidate = self.peers.get(node_id)
            if candidate is None or candidate.replica_type != ReplicaType.VOTER:
                raise RangeUnavailableError(
                    f"r{self.range_id}: node {node_id} cannot lead")
            if not self.log_complete(candidate):
                # Leader completeness: electing a log that misses
                # committed entries would lose acknowledged writes.
                raise RangeUnavailableError(
                    f"r{self.range_id}: node {node_id} log misses "
                    f"committed entries (commit {self.commit_index})")
        else:
            live = [p for p in self.voters()
                    if not self.network.node_is_dead(p.node.node_id)
                    and self.log_complete(p)]
            if not live:
                raise RangeUnavailableError(
                    f"r{self.range_id}: no electable live voter")
            candidate = max(live, key=lambda p: (p.last_term, p.last_index,
                                                 -p.node.node_id))
        self.term += 1
        self.leader_node_id = candidate.node.node_id
        # Proposals the new leader does not hold — by index, or by a
        # *different* entry at the same index (a divergent branch won) —
        # were never committed (commit requires a quorum, and the new
        # leader has the most complete live log): their proposers get a
        # definite failure instead of a phantom ack when the winning
        # branch's entry at that index commits.
        for index in sorted(self._inflight):
            record = self._inflight[index]
            if (index <= candidate.last_index
                    and candidate.log[index - 1] is record[2]):
                continue
            self._inflight.pop(index)
            if not record[0].done:
                record[0].reject(RangeUnavailableError(
                    f"r{self.range_id}: proposal {index} lost in "
                    f"failover to node {candidate.node.node_id}"))
        self._next_index = candidate.last_index + 1
        candidate.known_commit_index = max(candidate.known_commit_index,
                                           self.commit_index)
        self._apply_ready(candidate)
        # Re-drive the uncommitted tail: count the new leader's durable
        # copy as an ack and re-replicate to everyone else.
        for entry in candidate.log[self.commit_index:]:
            if entry.index not in self._inflight:
                self._inflight[entry.index] = [Future(self.sim), {}, entry, {}]
            self.sim.call_after(self.DISK_APPEND_MS, self._on_ack,
                                entry.index, candidate.node.node_id,
                                entry.term)
        for peer in self.peers.values():
            if peer is not candidate:
                self.resync_peer(peer.node.node_id)
        return candidate.node.node_id

    def log_complete(self, peer: PeerState) -> bool:
        """Does ``peer``'s log contain every committed entry?

        Stands in for the vote-quorum up-to-date check of a real Raft
        election: a deposed leader's replica can have a *longer* log
        than an up-to-date one (a stale uncommitted tail) — electing it
        anyway would silently drop acknowledged writes.
        """
        last = self._last_committed
        return (last is None
                or (peer.last_index >= last.index
                    and peer.log[last.index - 1] is last))

    def resync_peer(self, node_id: int) -> None:
        """Re-send a lagging peer everything it is missing.

        Used for crash-restart catch-up and post-failover repair: the
        peer receives every log entry past its last index plus the
        current commit index; duplicate deliveries are idempotent
        (:meth:`PeerState.stage` drops them).
        """
        if self.leader_node_id is None or node_id == self.leader_node_id:
            return
        leader = self.peers[self.leader_node_id]
        peer = self.peers.get(node_id)
        if peer is None:
            return
        # Start from the first point where the logs diverge — a peer
        # with a stale (post-failover) tail needs those indices
        # re-sent, not just everything past its last index.
        start = min(peer.last_index, leader.last_index)
        while start > 0 and peer.log[start - 1] is not leader.log[start - 1]:
            start -= 1
        for entry in leader.log[start:]:
            self._send_append(leader, peer, entry)
        self._send_commit_update(leader, peer, self.commit_index)

    def start_retransmission(self, interval_ms: float = 150.0) -> None:
        """Leader keep-alive: periodically resync every lagging peer.

        Raft's append retries, modelled coarsely: without this, a single
        dropped append or ack under packet loss would stall the commit
        index forever.  Off by default (seed experiments count
        messages); chaos provisioning turns it on.
        """
        if getattr(self, "_retransmit_started", False):
            return
        self._retransmit_started = True
        # Remembered so elastic splits can start the child's group with
        # the same hardening the parent was provisioned with.
        self._retransmit_interval_ms = interval_ms

        def retransmit():
            while True:
                yield self.sim.sleep(interval_ms)
                leader_id = self.leader_node_id
                if leader_id is None or self.network.node_is_dead(leader_id):
                    continue
                leader = self.peers.get(leader_id)
                if leader is None:
                    continue
                tail = leader.log[self.commit_index:]
                for peer in self.peers.values():
                    if peer is leader or self.network.node_is_dead(
                            peer.node.node_id):
                        continue
                    if (peer.last_index < leader.last_index
                            or peer.known_commit_index < self.commit_index):
                        self.resync_peer(peer.node.node_id)
                    elif any(peer.node.node_id not in
                             self._inflight[e.index][1]
                             for e in tail if e.index in self._inflight):
                        # The peer has the entries but its acks were
                        # lost: re-send the tail, which re-acks dups.
                        for entry in tail:
                            self._send_append(leader, peer, entry)
                # Re-ack the leader's own uncommitted tail so commit can
                # advance once quorum reappears.
                for entry in tail:
                    if entry.index in self._inflight:
                        self._on_ack(entry.index, leader_id, entry.term)

        self.sim.spawn(retransmit(), name=f"r{self.range_id}-retransmit")

    @property
    def leader(self) -> PeerState:
        if self.leader_node_id is None:
            raise RangeUnavailableError(f"r{self.range_id}: no leader")
        return self.peers[self.leader_node_id]

    def voters(self) -> List[PeerState]:
        return [p for p in self.peers.values()
                if p.replica_type == ReplicaType.VOTER]

    def non_voters(self) -> List[PeerState]:
        return [p for p in self.peers.values()
                if p.replica_type == ReplicaType.NON_VOTER]

    def quorum_size(self) -> int:
        # Counted inline (no voters() list) — this runs on every ack.
        n = 0
        for p in self.peers.values():
            if p.replica_type == ReplicaType.VOTER:
                n += 1
        return n // 2 + 1

    def live_voter_count(self) -> int:
        return sum(1 for p in self.voters()
                   if not self.network.node_is_dead(p.node.node_id))

    def has_quorum(self) -> bool:
        return self.live_voter_count() >= self.quorum_size()

    # -- proposal path -------------------------------------------------------

    def propose(self, command: Any, closed_ts: Timestamp,
                span=None) -> Future:
        """Replicate ``command``; resolves once committed & applied on the
        leader.  The resolved value is the :class:`Entry`.

        Traces a ``raft.propose`` span (child of ``span``) covering
        stage → quorum ack → commit, with one ``raft.append`` child per
        follower stream.
        """
        obs = self.sim.obs
        leader = self.leader
        if self.network.node_is_dead(leader.node.node_id):
            fut = Future(self.sim)
            fut.reject(RangeUnavailableError(f"r{self.range_id}: leader dead"))
            return fut
        entry = Entry(index=self._next_index, term=self.term,
                      command=command, closed_ts=closed_ts)
        self._next_index += 1
        fut = Future(self.sim)
        #: index -> [future, acks, entry, per-peer append spans]
        append_spans: Dict[int, Any] = {}
        self._inflight[entry.index] = [fut, {leader.node.node_id: False},
                                       entry, append_spans]
        obs_on = obs.enabled
        if obs_on:
            # The whole span/metrics block is skipped with observability
            # off: every call below would be a no-op anyway, and the
            # proposal path is hot enough for the calls themselves to
            # show up in profiles.
            proposed_at = self.sim.now
            if self._c_proposals is None:
                self._c_proposals = obs.registry.counter(
                    "raft.proposals", range=self.range_id)
            self._c_proposals.inc()
            prop_span = obs.tracer.start_span(
                "raft.propose", parent=span, range=self.range_id,
                index=entry.index, term=entry.term)

            def close_spans(done: Future) -> None:
                # Append spans for acks that never arrived (or arrive
                # after the proposal resolved) end with the proposal, so
                # every child stays inside the raft.propose window.
                for peer_id, append_span in sorted(append_spans.items()):
                    append_span.finish(acked=False)
                append_spans.clear()
                error = done.error
                if error is not None:
                    prop_span.annotate(error=type(error).__name__)
                    if self._c_rejected is None:
                        self._c_rejected = obs.registry.counter(
                            "raft.proposals_rejected", range=self.range_id)
                    self._c_rejected.inc()
                else:
                    if self._h_commit_ms is None:
                        self._h_commit_ms = obs.registry.histogram(
                            "raft.commit_ms", range=self.range_id)
                    self._h_commit_ms.observe(self.sim.now - proposed_at)
                prop_span.finish()
            fut.add_callback(close_spans)

        if self.proposal_timeout_ms is not None:
            self.sim.call_after(self.proposal_timeout_ms,
                                self._maybe_timeout, entry.index)
        # Local append (counts as the leader's own ack after disk latency).
        # The leader's log is canonical at its own term: a stale in-flight
        # append from a deposed leader may have extended it past the
        # proposal point, and staging against that tail would wedge the
        # chain once the conflict is truncated.  Drop the stale suffix
        # first, then append.
        llog = leader.log
        if (llog[-1].index if llog else 0) >= entry.index:
            del llog[entry.index - 1:]
            leader._staged = {i: s for i, s in leader._staged.items()
                              if i < entry.index}
        leader.stage(entry, llog[-1] if llog else None,
                     authoritative=True)
        self.sim._schedule(self.DISK_APPEND_MS, self._on_ack,
                           entry.index, leader.node.node_id, entry.term)
        # Stream to every other peer, voters and learners alike.
        for peer in self.peers.values():
            if peer.node.node_id == leader.node.node_id:
                continue
            if obs_on:
                append_spans[peer.node.node_id] = obs.tracer.start_span(
                    "raft.append", parent=prop_span, peer=peer.node.node_id)
            self._send_append(leader, peer, entry)
        return fut

    def _maybe_timeout(self, index: int) -> None:
        # Reject the waiting client but keep the ack tracking: the entry
        # is still in the log, and late acks (a healed partition, a
        # retransmission) must be able to commit it — otherwise every
        # later entry stalls behind the gap forever.
        inflight = self._inflight.get(index)
        if inflight is not None and not inflight[0].done:
            inflight[0].reject(RangeUnavailableError(
                f"r{self.range_id}: proposal {index} timed out (no quorum)"))

    # -- message coalescing --------------------------------------------------

    def _outbox_for(self, leader: PeerState, peer: PeerState) -> Dict[str, Any]:
        """The pending batch for one leader→peer stream; the first
        message of a window creates the batch and schedules its flush."""
        key = (leader.node.node_id, peer.node.node_id)
        batch = self._outbox.get(key)
        if batch is None:
            batch = {"leader": leader, "peer": peer,
                     "appends": [], "commit": None, "closed": None}
            self._outbox[key] = batch
            self.sim.call_after(self.coalesce_ms, self._flush_outbox, key)
        return batch

    def _flush_outbox(self, key) -> None:
        batch = self._outbox.pop(key, None)
        if batch is None:
            return
        leader, peer = batch["leader"], batch["peer"]
        self.sim.obs.registry.counter("raft.coalesced_batches",
                                      range=self.range_id).inc()
        deliver = lambda: self._deliver_batch(leader, peer, batch)  # noqa: E731
        monitor = self.network.clock_monitor
        if monitor is not None:
            deliver = monitor.wrap(leader.node, peer.node, deliver)
        self.network.send(leader.node, peer.node, deliver)

    def _deliver_batch(self, leader: PeerState, peer: PeerState,
                       batch: Dict[str, Any]) -> None:
        """Apply one coalesced leader→peer message: appends in order,
        then the commit-index advance, then the closed-ts heartbeat —
        so a batch can carry an entry *and* the word that it committed."""
        before = peer.last_index
        for entry, prev, msg_term in batch["appends"]:
            peer.stage(entry, prev, authoritative=(
                msg_term == self.term
                and self.leader_node_id == leader.node.node_id))
        self._apply_ready(peer)
        acks: List = []
        if peer.last_index > before:
            for index in range(before + 1, peer.last_index + 1):
                acks.append((index, peer.log[index - 1].term))
        for entry, prev, msg_term in batch["appends"]:
            if (entry.index <= before
                    and peer.log[entry.index - 1] is entry):
                # Duplicate delivery (retransmission): the original ack
                # may have been lost — re-ack.
                acks.append((entry.index, entry.term))
        if acks:
            # One ack message for the whole batch, after a single disk
            # append (the entries land in one write).
            self.sim._schedule(self.DISK_APPEND_MS, self._send_ack_batch,
                               peer, acks)
        commit = batch["commit"]
        if commit is not None:
            self._learn_commit(peer, commit[0], commit[1])
        closed = batch["closed"]
        if closed is not None:
            ts, commit_idx, committed = closed
            self._learn_commit(peer, commit_idx, committed)
            if peer.applied_index >= commit_idx and ts > peer.closed_ts:
                monitor = self.network.clock_monitor
                if monitor is None or monitor.accepts_closed_ts(peer.node, ts):
                    peer.closed_ts = ts

    def _send_ack_batch(self, peer: PeerState, acks: List) -> None:
        leader = self.peers.get(self.leader_node_id)
        if leader is None:
            return
        deliver = lambda: self._deliver_acks(peer.node.node_id, acks)  # noqa: E731
        monitor = self.network.clock_monitor
        if monitor is not None:
            deliver = monitor.wrap(peer.node, leader.node, deliver)
        self.network.send(peer.node, leader.node, deliver)

    def _deliver_acks(self, node_id: int, acks: List) -> None:
        for index, term in acks:
            self._on_ack(index, node_id, term)

    def _send_append(self, leader: PeerState, peer: PeerState,
                     entry: Entry) -> None:
        llog = leader.log
        prev = (llog[entry.index - 2]
                if 2 <= entry.index <= (llog[-1].index if llog else 0) + 1
                else None)
        if self.coalesce_ms is not None:
            self._outbox_for(leader, peer)["appends"].append(
                (entry, prev, self.term))
            return
        # Send-time state (the message's term and claimed sender) rides
        # as args; delivery-time state (current term/leader) is read in
        # _deliver_append.  No closure on the hot path — the clock-safety
        # piggyback keeps the wrapped-closure form, one attribute check
        # on the legacy path.
        monitor = self.network.clock_monitor
        if monitor is not None:
            deliver = monitor.wrap(
                leader.node, peer.node,
                lambda t=self.term, lid=leader.node.node_id:
                    self._deliver_append(peer, entry, prev, t, lid))
            self.network.send(leader.node, peer.node, deliver)
            return
        self.network.send(leader.node, peer.node, self._deliver_append,
                          peer, entry, prev, self.term, leader.node.node_id)

    def _deliver_append(self, peer: PeerState, entry: Entry,
                        prev: Optional[Entry], msg_term: int,
                        from_node_id: int) -> None:
        log = peer.log
        before = log[-1].index if log else 0
        peer.stage(entry, prev, authoritative=(
            msg_term == self.term
            and self.leader_node_id == from_node_id))
        self._apply_ready(peer)
        # Ack whatever actually landed in the log (after the peer's
        # disk append) — never a merely-staged entry, whose prefix
        # the peer does not yet have durably.
        after = log[-1].index if log else 0
        if after > before:
            schedule = self.sim._schedule
            send_ack = self._send_ack
            for index in range(before + 1, after + 1):
                landed = log[index - 1]
                schedule(self.DISK_APPEND_MS, send_ack,
                         peer, index, landed.term)
        elif (entry.index <= after
              and log[entry.index - 1] is entry):
            # Duplicate delivery (retransmission): the original ack
            # may have been lost — re-ack.
            self.sim._schedule(self.DISK_APPEND_MS, self._send_ack,
                               peer, entry.index, entry.term)

    def _send_ack(self, peer: PeerState, index: int,
                  term: Optional[int] = None) -> None:
        leader = self.peers.get(self.leader_node_id)
        if leader is None:
            return
        monitor = self.network.clock_monitor
        if monitor is not None:
            deliver = monitor.wrap(
                peer.node, leader.node,
                lambda: self._on_ack(index, peer.node.node_id, term))
            self.network.send(peer.node, leader.node, deliver)
            return
        self.network.send(peer.node, leader.node, self._on_ack,
                          index, peer.node.node_id, term)

    def _on_ack(self, index: int, from_node_id: int,
                term: Optional[int] = None) -> None:
        inflight = self._inflight.get(index)
        if inflight is None:
            return
        if term is not None:
            # A stale ack (for an entry replaced after failover) must
            # not count toward the entry now occupying this index.
            leader = self.peers.get(self.leader_node_id)
            if leader is None:
                return
            llog = leader.log
            if (index > (llog[-1].index if llog else 0)
                    or llog[index - 1].term != term):
                return
        acks = inflight[1]
        acks[from_node_id] = True
        if len(inflight) > 3:
            append_span = inflight[3].pop(from_node_id, None)
            if append_span is not None:
                append_span.finish(acked=True)
        if (self._live_quorum_acks(index, acks) >= self.quorum_size()
                and index == self.commit_index + 1):
            self._advance_commit(index)

    def _live_quorum_acks(self, index: int, acks: Dict[int, bool]) -> int:
        """Count voter acks for ``index`` that are still *valid*: the
        acking replica's log must currently hold the leader's exact
        entry at that index.  An ack recorded before the peer's suffix
        was truncated in a failover is a phantom — counting it would
        commit an entry that no quorum actually stores."""
        peers = self.peers
        leader = peers.get(self.leader_node_id)
        if leader is None:
            return 0
        llog = leader.log
        if index > (llog[-1].index if llog else 0):
            return 0
        entry = llog[index - 1]
        count = 0
        for nid, acked in acks.items():
            if not acked:
                continue
            peer = peers.get(nid)
            if peer is None or peer.replica_type != ReplicaType.VOTER:
                continue
            plog = peer.log
            if (plog and plog[-1].index >= index
                    and plog[index - 1] is entry):
                count += 1
        return count

    def _advance_commit(self, index: int) -> None:
        """Commit ``index`` and any consecutive successors already acked."""
        while True:
            self.commit_index = index
            self.proposals_committed += 1
            if self._c_commits is None:
                self._c_commits = self.sim.obs.registry.counter(
                    "raft.commits", range=self.range_id)
            self._c_commits.inc()
            leader = self.leader
            self._last_committed = leader.log[index - 1]
            leader.known_commit_index = index
            self._apply_ready(leader)
            inflight = self._inflight.pop(index, None)
            if inflight is not None and not inflight[0].done:
                entry = leader.log[index - 1]
                if inflight[2] is entry:
                    inflight[0].resolve(entry)
                else:
                    # A divergent branch's entry won this index; the
                    # original proposal was lost in a failover.
                    inflight[0].reject(RangeUnavailableError(
                        f"r{self.range_id}: proposal {index} superseded "
                        f"after failover"))
            # Broadcast the new commit index (enables follower application).
            for peer in self.peers.values():
                if peer.node.node_id == leader.node.node_id:
                    continue
                self._send_commit_update(leader, peer, index)
            nxt = self._inflight.get(index + 1)
            if nxt is None:
                break
            if self._live_quorum_acks(index + 1, nxt[1]) < self.quorum_size():
                break
            index += 1

    def _send_commit_update(self, leader: PeerState, peer: PeerState,
                            index: int) -> None:
        llog = leader.log
        entry = (llog[index - 1]
                 if 0 < index <= (llog[-1].index if llog else 0) else None)
        if self.coalesce_ms is not None:
            batch = self._outbox_for(leader, peer)
            if batch["commit"] is None or index > batch["commit"][0]:
                batch["commit"] = (index, entry)
            return

        self.network.send(leader.node, peer.node, self._learn_commit,
                          peer, index, entry)

    def _learn_commit(self, peer: PeerState, index: int,
                      entry: Optional[Entry]) -> None:
        """Advance a peer's known commit index — but only if its log
        actually holds the committed entry at that index.  A replica
        with a stale (replaced-after-failover) entry there must resync
        first, or it would apply the wrong command."""
        if index > peer.known_commit_index:
            log = peer.log
            if entry is None or ((log[-1].index if log else 0) >= index
                                 and log[index - 1] is entry):
                peer.known_commit_index = index
        self._apply_ready(peer)

    def _apply_ready(self, peer: PeerState) -> None:
        """Apply every log entry that is both local and known-committed."""
        log = peer.log
        limit = peer.known_commit_index
        if not log:
            return
        if log[-1].index < limit:
            limit = log[-1].index
        while peer.applied_index < limit:
            entry = log[peer.applied_index]
            self.apply_fn(peer.node, entry.command)
            peer.applied_index = entry.index
            if entry.closed_ts > peer.closed_ts:
                peer.closed_ts = entry.closed_ts

    # -- closed-timestamp side transport -------------------------------------

    def broadcast_closed_ts(self, closed_ts: Timestamp) -> None:
        """Ship a closed-timestamp-only heartbeat (idle ranges).

        In CRDB this is the closed-timestamp side transport; it lets the
        closed timestamp advance without write traffic.
        """
        leader = self.leader
        if closed_ts > leader.closed_ts:
            leader.closed_ts = closed_ts
        leader_node = leader.node
        leader_id = leader_node.node_id
        coalesce = self.coalesce_ms
        commit_index = self.commit_index
        last_committed = self._last_committed
        monitor = self.network.clock_monitor
        send = self.network.send
        for peer in self.peers.values():
            if peer.node.node_id == leader_id:
                continue
            if coalesce is not None:
                batch = self._outbox_for(leader, peer)
                closed = batch["closed"]
                if closed is None or closed_ts > closed[0]:
                    batch["closed"] = (closed_ts, commit_index,
                                       last_committed)
                continue
            # Valid only if the peer is caught up on application; otherwise
            # it would claim data it does not yet have.
            if monitor is not None:
                deliver = monitor.wrap(
                    leader_node, peer.node,
                    lambda p=peer: self._deliver_closed_ts(
                        p, closed_ts, commit_index, last_committed))
                send(leader_node, peer.node, deliver)
                continue
            send(leader_node, peer.node, self._deliver_closed_ts,
                 peer, closed_ts, commit_index, last_committed)

    def _deliver_closed_ts(self, peer: PeerState, ts: Timestamp,
                           commit: int, committed: Optional[Entry]) -> None:
        self._learn_commit(peer, commit, committed)
        if peer.applied_index >= commit and ts > peer.closed_ts:
            mon = self.network.clock_monitor
            if mon is None or mon.accepts_closed_ts(peer.node, ts):
                peer.closed_ts = ts
