"""A Raft group: one per Range.

Faithful to the latency-relevant behaviour of etcd/raft as used by
CockroachDB:

* The leader appends to its local log (small disk latency), streams the
  entry to every peer, and commits once a *quorum of voters* has
  acknowledged — learners (non-voting replicas, paper §5.2) receive the
  log but never count toward quorum and therefore never affect write
  latency.
* Followers apply an entry only once they know it is committed; the
  leader broadcasts commit-index advances, so the time for an entry to
  apply on the furthest follower is the paper's ``L_replicate``.
* Each entry carries a closed timestamp; a follower's local closed
  timestamp is the maximum over applied entries, optionally refreshed by
  an idle-range side-transport heartbeat.

Leadership is stable (no randomized election timers): the placement
layer assigns leadership/leases explicitly, and failover is modelled by
``transfer_leadership``.  This keeps experiments deterministic while
still letting failure tests exercise quorum loss and recovery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..errors import RangeUnavailableError
from ..sim.clock import TS_ZERO, Timestamp
from ..sim.core import Future, Simulator
from .log import Entry

__all__ = ["RaftGroup", "PeerState", "ReplicaType"]


class ReplicaType:
    """Replica roles within a group."""

    VOTER = "voter"
    NON_VOTER = "non_voter"  # Raft learner


@dataclass
class PeerState:
    """The per-replica Raft state living on one node."""

    node: Any
    replica_type: str
    log: List[Entry] = field(default_factory=list)
    applied_index: int = 0
    closed_ts: Timestamp = TS_ZERO
    #: Entries received out of order, keyed by index.
    _staged: Dict[int, Entry] = field(default_factory=dict)
    #: Highest commit index this peer has heard of.
    known_commit_index: int = 0

    @property
    def last_index(self) -> int:
        return self.log[-1].index if self.log else 0

    def stage(self, entry: Entry) -> None:
        if entry.index <= self.last_index:
            return  # duplicate
        self._staged[entry.index] = entry
        while self.last_index + 1 in self._staged:
            self.log.append(self._staged.pop(self.last_index + 1))


class RaftGroup:
    """Replication state machine for a single Range."""

    #: Simulated local storage append latency per entry (ms).
    DISK_APPEND_MS = 0.25

    def __init__(self, sim: Simulator, network, range_id: int,
                 apply_fn: Callable[[Any, Any], None],
                 proposal_timeout_ms: Optional[float] = None):
        """``apply_fn(peer_node, command)`` applies a committed command to
        the replica state on ``peer_node``."""
        self.sim = sim
        self.network = network
        self.range_id = range_id
        self.apply_fn = apply_fn
        self.proposal_timeout_ms = proposal_timeout_ms
        self.term = 1
        self.leader_node_id: Optional[int] = None
        self.peers: Dict[int, PeerState] = {}
        self.commit_index = 0
        self._next_index = 1
        #: index -> (future, acks set)
        self._inflight: Dict[int, Any] = {}
        self.proposals_committed = 0

    # -- membership --------------------------------------------------------

    def add_peer(self, node, replica_type: str) -> PeerState:
        peer = PeerState(node=node, replica_type=replica_type)
        # New peers catch up from the leader's log (snapshot shortcut).
        if self.leader_node_id is not None:
            leader = self.peers[self.leader_node_id]
            peer.log = list(leader.log)
            peer.applied_index = leader.applied_index
            peer.closed_ts = leader.closed_ts
            peer.known_commit_index = self.commit_index
        self.peers[node.node_id] = peer
        return peer

    def remove_peer(self, node_id: int) -> None:
        self.peers.pop(node_id, None)

    def set_leader(self, node_id: int) -> None:
        if node_id not in self.peers:
            raise RangeUnavailableError(
                f"r{self.range_id}: node {node_id} is not a member")
        if self.peers[node_id].replica_type != ReplicaType.VOTER:
            raise RangeUnavailableError(
                f"r{self.range_id}: non-voter {node_id} cannot lead")
        self.leader_node_id = node_id

    def transfer_leadership(self, node_id: int) -> None:
        """Move leadership (used for lease transfers and failover)."""
        self.term += 1
        self.set_leader(node_id)

    @property
    def leader(self) -> PeerState:
        if self.leader_node_id is None:
            raise RangeUnavailableError(f"r{self.range_id}: no leader")
        return self.peers[self.leader_node_id]

    def voters(self) -> List[PeerState]:
        return [p for p in self.peers.values()
                if p.replica_type == ReplicaType.VOTER]

    def non_voters(self) -> List[PeerState]:
        return [p for p in self.peers.values()
                if p.replica_type == ReplicaType.NON_VOTER]

    def quorum_size(self) -> int:
        return len(self.voters()) // 2 + 1

    def live_voter_count(self) -> int:
        return sum(1 for p in self.voters()
                   if not self.network.node_is_dead(p.node.node_id))

    def has_quorum(self) -> bool:
        return self.live_voter_count() >= self.quorum_size()

    # -- proposal path -------------------------------------------------------

    def propose(self, command: Any, closed_ts: Timestamp) -> Future:
        """Replicate ``command``; resolves once committed & applied on the
        leader.  The resolved value is the :class:`Entry`."""
        leader = self.leader
        if self.network.node_is_dead(leader.node.node_id):
            fut = Future(self.sim)
            fut.reject(RangeUnavailableError(f"r{self.range_id}: leader dead"))
            return fut
        entry = Entry(index=self._next_index, term=self.term,
                      command=command, closed_ts=closed_ts)
        self._next_index += 1
        fut = Future(self.sim)
        self._inflight[entry.index] = [fut, {leader.node.node_id: False}]
        if self.proposal_timeout_ms is not None:
            self.sim.call_after(self.proposal_timeout_ms,
                                self._maybe_timeout, entry.index)
        # Local append (counts as the leader's own ack after disk latency).
        leader.stage(entry)
        self.sim.call_after(self.DISK_APPEND_MS,
                            self._on_ack, entry.index, leader.node.node_id)
        # Stream to every other peer, voters and learners alike.
        for peer in self.peers.values():
            if peer.node.node_id == leader.node.node_id:
                continue
            self._send_append(leader, peer, entry)
        return fut

    def _maybe_timeout(self, index: int) -> None:
        inflight = self._inflight.pop(index, None)
        if inflight is not None and not inflight[0].done:
            inflight[0].reject(RangeUnavailableError(
                f"r{self.range_id}: proposal {index} timed out (no quorum)"))

    def _send_append(self, leader: PeerState, peer: PeerState,
                     entry: Entry) -> None:
        def on_deliver() -> None:
            peer.stage(entry)
            self._apply_ready(peer)
            # Ack after the peer's disk append.
            self.sim.call_after(
                self.DISK_APPEND_MS, self._send_ack, peer, entry.index)
        self.network.send(leader.node, peer.node, on_deliver)

    def _send_ack(self, peer: PeerState, index: int) -> None:
        leader = self.peers.get(self.leader_node_id)
        if leader is None:
            return
        self.network.send(
            peer.node, leader.node,
            lambda: self._on_ack(index, peer.node.node_id))

    def _on_ack(self, index: int, from_node_id: int) -> None:
        inflight = self._inflight.get(index)
        if inflight is None:
            return
        _fut, acks = inflight
        acks[from_node_id] = True
        voter_ids = {p.node.node_id for p in self.voters()}
        voter_acks = sum(1 for nid in acks if nid in voter_ids)
        if voter_acks >= self.quorum_size() and index == self.commit_index + 1:
            self._advance_commit(index)

    def _advance_commit(self, index: int) -> None:
        """Commit ``index`` and any consecutive successors already acked."""
        while True:
            self.commit_index = index
            self.proposals_committed += 1
            leader = self.leader
            leader.known_commit_index = index
            self._apply_ready(leader)
            inflight = self._inflight.pop(index, None)
            if inflight is not None and not inflight[0].done:
                entry = leader.log[index - 1]
                inflight[0].resolve(entry)
            # Broadcast the new commit index (enables follower application).
            for peer in self.peers.values():
                if peer.node.node_id == leader.node.node_id:
                    continue
                self._send_commit_update(leader, peer, index)
            nxt = self._inflight.get(index + 1)
            if nxt is None:
                break
            voter_ids = {p.node.node_id for p in self.voters()}
            voter_acks = sum(1 for nid in nxt[1] if nid in voter_ids)
            if voter_acks < self.quorum_size():
                break
            index += 1

    def _send_commit_update(self, leader: PeerState, peer: PeerState,
                            index: int) -> None:
        def on_deliver() -> None:
            if index > peer.known_commit_index:
                peer.known_commit_index = index
            self._apply_ready(peer)
        self.network.send(leader.node, peer.node, on_deliver)

    def _apply_ready(self, peer: PeerState) -> None:
        """Apply every log entry that is both local and known-committed."""
        limit = min(peer.known_commit_index, peer.last_index)
        while peer.applied_index < limit:
            entry = peer.log[peer.applied_index]
            self.apply_fn(peer.node, entry.command)
            peer.applied_index = entry.index
            if entry.closed_ts > peer.closed_ts:
                peer.closed_ts = entry.closed_ts

    # -- closed-timestamp side transport -------------------------------------

    def broadcast_closed_ts(self, closed_ts: Timestamp) -> None:
        """Ship a closed-timestamp-only heartbeat (idle ranges).

        In CRDB this is the closed-timestamp side transport; it lets the
        closed timestamp advance without write traffic.
        """
        leader = self.leader
        if closed_ts > leader.closed_ts:
            leader.closed_ts = closed_ts
        for peer in self.peers.values():
            if peer.node.node_id == leader.node.node_id:
                continue
            # Valid only if the peer is caught up on application; otherwise
            # it would claim data it does not yet have.
            def make_update(p: PeerState, ts: Timestamp, commit: int):
                def on_deliver() -> None:
                    if commit > p.known_commit_index:
                        p.known_commit_index = commit
                    self._apply_ready(p)
                    if p.applied_index >= commit and ts > p.closed_ts:
                        p.closed_ts = ts
                return on_deliver
            self.network.send(leader.node, peer.node,
                              make_update(peer, closed_ts, self.commit_index))
