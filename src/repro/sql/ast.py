"""AST nodes for the multi-region SQL dialect.

The dialect covers every statement the paper shows (§2) plus the DML the
benchmarks need.  Expressions are a small tree: literals, column
references, function calls, CASE WHEN, and boolean comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

__all__ = [
    # expressions
    "Literal", "ColumnRef", "FuncCall", "CaseWhen", "Comparison",
    "LogicalAnd", "InList",
    # locality
    "LocalityGlobal", "LocalityRegionalByTable", "LocalityRegionalByRow",
    # DDL
    "ColumnDef", "CreateDatabase", "AlterDatabaseAddRegion",
    "AlterDatabaseDropRegion", "AlterDatabaseSurvive",
    "AlterDatabasePlacement", "AlterDatabaseSetPrimaryRegion",
    "CreateTable", "AlterTableSetLocality", "AlterTableAddColumn",
    "ForeignKeyDef",
    "CreateIndex", "DropTable",
    # DML / queries
    "Insert", "Select", "Update", "Delete", "ShowRegions", "UseDatabase",
    "AsOf", "Explain", "ShowRanges", "ShowZoneConfiguration",
    "Begin", "Commit", "Rollback",
]


# -- expressions ---------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: Any


@dataclass(frozen=True)
class ColumnRef:
    name: str


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: Tuple = ()


@dataclass(frozen=True)
class CaseWhen:
    """CASE WHEN <cond> THEN <expr> [WHEN ...] ELSE <expr> END."""
    whens: Tuple  # tuple of (condition, result) expression pairs
    default: Any  # expression


@dataclass(frozen=True)
class Comparison:
    op: str  # '=', '<>', '<', '<=', '>', '>='
    left: Any
    right: Any


@dataclass(frozen=True)
class LogicalAnd:
    parts: Tuple


@dataclass(frozen=True)
class InList:
    column: ColumnRef
    values: Tuple


# -- table localities (§2.3) ---------------------------------------------------


@dataclass(frozen=True)
class LocalityGlobal:
    pass


@dataclass(frozen=True)
class LocalityRegionalByTable:
    region: Optional[str] = None  # None means the PRIMARY region


@dataclass(frozen=True)
class LocalityRegionalByRow:
    column: Optional[str] = None  # None means the hidden crdb_region


# -- DDL -------------------------------------------------------------------------


@dataclass
class ColumnDef:
    name: str
    type_name: str
    primary_key: bool = False
    not_null: bool = False
    unique: bool = False
    visible: bool = True
    default: Optional[Any] = None       # expression
    computed: Optional[Any] = None      # AS (expr) STORED
    on_update: Optional[Any] = None     # ON UPDATE expr
    references: Optional[str] = None    # REFERENCES table


@dataclass
class CreateDatabase:
    name: str
    primary_region: Optional[str] = None
    regions: List[str] = field(default_factory=list)


@dataclass
class AlterDatabaseAddRegion:
    database: str
    region: str


@dataclass
class AlterDatabaseDropRegion:
    database: str
    region: str


@dataclass
class AlterDatabaseSurvive:
    database: str
    goal: str  # 'zone' | 'region'


@dataclass
class AlterDatabasePlacement:
    database: str
    restricted: bool


@dataclass
class AlterDatabaseSetPrimaryRegion:
    database: str
    region: str


@dataclass(frozen=True)
class ForeignKeyDef:
    """Table-level FOREIGN KEY (cols) REFERENCES parent (cols) with an
    optional ON UPDATE CASCADE (collocated child rows, §2.3.2)."""
    columns: Tuple[str, ...]
    parent: str
    parent_columns: Tuple[str, ...] = ()
    on_update_cascade: bool = False

    def __post_init__(self):
        object.__setattr__(self, "columns", tuple(self.columns))
        object.__setattr__(self, "parent_columns",
                           tuple(self.parent_columns))


@dataclass
class CreateTable:
    name: str
    columns: List[ColumnDef]
    primary_key: List[str] = field(default_factory=list)
    unique_constraints: List[List[str]] = field(default_factory=list)
    foreign_keys: List["ForeignKeyDef"] = field(default_factory=list)
    locality: Optional[Any] = None


@dataclass
class AlterTableSetLocality:
    table: str
    locality: Any


@dataclass
class AlterTableAddColumn:
    table: str
    column: ColumnDef


@dataclass
class CreateIndex:
    name: str
    table: str
    columns: List[str]
    unique: bool = False


@dataclass
class DropTable:
    name: str


# -- DML / queries ------------------------------------------------------------------


@dataclass(frozen=True)
class AsOf:
    """AS OF SYSTEM TIME clause: exact or bounded staleness (§5.3)."""
    kind: str       # 'exact' | 'min_timestamp' | 'max_staleness'
    value: Any      # interval string like '-30s' or a timestamp literal


@dataclass
class Insert:
    table: str
    columns: List[str]
    rows: List[List[Any]]  # expression lists


@dataclass
class Select:
    table: str
    columns: List[str]          # ['*'] for all visible columns
    where: Optional[Any] = None
    as_of: Optional[AsOf] = None
    limit: Optional[int] = None
    #: SELECT ... FOR UPDATE acquires write locks on matched rows,
    #: avoiding write-too-old retries in read-modify-write transactions.
    for_update: bool = False


@dataclass
class Update:
    table: str
    assignments: List[Tuple[str, Any]]
    where: Optional[Any] = None


@dataclass
class Delete:
    table: str
    where: Optional[Any] = None


@dataclass
class ShowRegions:
    from_database: Optional[str] = None


@dataclass
class UseDatabase:
    name: str


@dataclass
class Explain:
    """EXPLAIN <statement>: show the locality-aware plan (§4)."""
    statement: Any


@dataclass
class Begin:
    """BEGIN: open an explicit transaction on the session."""


@dataclass
class Commit:
    """COMMIT the session's open transaction."""


@dataclass
class Rollback:
    """ROLLBACK the session's open transaction."""


@dataclass
class ShowRanges:
    """SHOW RANGES FROM TABLE t: replica/leaseholder placement."""
    table: str


@dataclass
class ShowZoneConfiguration:
    """SHOW ZONE CONFIGURATION FOR TABLE t (§3.2, Listing 1)."""
    table: str
