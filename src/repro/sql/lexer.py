"""Tokenizer for the SQL dialect."""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List

from ..errors import SqlSyntaxError

__all__ = ["Token", "tokenize"]

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<qident>"(?:[^"]|"")*")
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|;|\*|\.|-|\+)
""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str   # 'number' | 'string' | 'ident' | 'qident' | 'op' | 'eof'
    text: str
    pos: int

    @property
    def upper(self) -> str:
        return self.text.upper()


def tokenize(sql: str) -> List[Token]:
    """Split ``sql`` into tokens; raises SqlSyntaxError on garbage."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise SqlSyntaxError(
                f"unexpected character {sql[pos]!r} at offset {pos}")
        kind = match.lastgroup
        text = match.group()
        if kind not in ("ws", "comment"):
            if kind == "qident":
                text = text[1:-1].replace('""', '"')
                kind = "ident"
            elif kind == "string":
                text = text[1:-1].replace("''", "'")
            tokens.append(Token(kind=kind, text=text, pos=pos))
        pos = match.end()
    tokens.append(Token(kind="eof", text="", pos=len(sql)))
    return tokens
