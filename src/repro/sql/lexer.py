"""Tokenizer for the SQL dialect."""

from __future__ import annotations

import re
from typing import List

from ..errors import SqlSyntaxError

__all__ = ["Token", "tokenize"]

_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<comment>--[^\n]*)
  | (?P<number>\d+\.\d+|\d+)
  | (?P<qident>"(?:[^"]|"")*")
  | (?P<string>'(?:[^']|'')*')
  | (?P<ident>[A-Za-z_][A-Za-z0-9_$]*)
  | (?P<op><>|<=|>=|!=|=|<|>|\(|\)|,|;|\*|\.|-|\+)
""", re.VERBOSE)


class Token:
    """One lexed token.

    A plain ``__slots__`` class (not a dataclass): workload statements
    are parsed by the thousand and frozen-dataclass construction was
    the single largest lexer cost.  ``upper`` is precomputed for
    identifiers — keyword matching consults it repeatedly — and aliases
    ``text`` for every other kind.
    """

    __slots__ = ("kind", "text", "upper", "pos")

    def __init__(self, kind: str, text: str, upper: str, pos: int):
        self.kind = kind
        self.text = text
        self.upper = upper
        self.pos = pos

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind!r}, {self.text!r}, pos={self.pos})"

    def __eq__(self, other) -> bool:
        return (isinstance(other, Token) and self.kind == other.kind
                and self.text == other.text and self.pos == other.pos)


def tokenize(sql: str) -> List[Token]:
    """Split ``sql`` into tokens; raises SqlSyntaxError on garbage."""
    tokens: List[Token] = []
    append = tokens.append
    prev_end = 0
    for match in _TOKEN_RE.finditer(sql):
        pos = match.start()
        if pos != prev_end:
            raise SqlSyntaxError(
                f"unexpected character {sql[prev_end]!r} at offset {prev_end}")
        prev_end = match.end()
        kind = match.lastgroup
        if kind == "ws" or kind == "comment":
            continue
        text = match.group()
        if kind == "ident":
            append(Token("ident", text, text.upper(), pos))
        elif kind == "qident":
            text = text[1:-1].replace('""', '"')
            append(Token("ident", text, text.upper(), pos))
        elif kind == "string":
            text = text[1:-1].replace("''", "'")
            append(Token("string", text, text, pos))
        else:
            append(Token(kind, text, text, pos))
    if prev_end != len(sql):
        raise SqlSyntaxError(
            f"unexpected character {sql[prev_end]!r} at offset {prev_end}")
    tokens.append(Token("eof", "", "", len(sql)))
    return tokens
