"""Schema changes (paper §2.4).

Applies the multi-region DDL to the catalog and provisions/reconfigures
the underlying Ranges:

* ``CREATE TABLE ... LOCALITY ...`` provisions one Range per index (and
  per region for REGIONAL BY ROW) with the zone config derived from the
  database's survivability goal (§3.3);
* ``ALTER TABLE ... SET LOCALITY`` rebuilds the table's indexes under
  the new partitioning and backfills data (§2.4.2);
* ``ALTER DATABASE ... ADD/DROP REGION`` adds/removes
  ``crdb_internal_region`` ENUM values, creates/destroys REGIONAL BY ROW
  partitions, and re-places every affected Range; dropping first marks
  the value READ ONLY and validates no row is homed there (§2.4.1);
* survivability and placement changes re-derive every zone config.

Backfills are modelled as bulk ingestion at a single timestamp (CRDB's
AddSSTable); the schema-change itself is metadata-instant, which stands
in for CRDB's online schema change protocol — the experiments measure
steady-state DML, not schema-change throughput.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..errors import ConfigurationError, SchemaError
from ..kv.keyspace import live_ranges
from ..placement.goals import SurvivalGoal, zone_config_for_home
from ..placement.provision import provision_range, reconfigure_range
from . import ast
from .catalog import (
    Catalog,
    Column,
    Database,
    DEFAULT_PARTITION,
    Index,
    REGION_COLUMN,
    Table,
    TableLocality,
)

__all__ = ["SchemaChangeEngine"]


class SchemaChangeEngine:
    """Applies DDL statements against a cluster + catalog."""

    def __init__(self, cluster, catalog: Catalog,
                 side_transport_interval_ms: Optional[float] = None,
                 closed_ts_lag_ms: Optional[float] = None):
        self.cluster = cluster
        self.catalog = catalog
        self.side_transport_interval_ms = side_transport_interval_ms
        self.closed_ts_lag_ms = closed_ts_lag_ms

    # -- databases ----------------------------------------------------------------

    def create_database(self, stmt: ast.CreateDatabase) -> Database:
        cluster_regions = self.cluster.regions()
        for region in ([stmt.primary_region] if stmt.primary_region else []) \
                + list(stmt.regions):
            if region not in cluster_regions:
                raise SchemaError(
                    f"region {region!r} has no nodes in this cluster")
        database = Database(stmt.name, primary_region=stmt.primary_region,
                            regions=stmt.regions)
        self.catalog.add_database(database)
        return database

    def add_region(self, database: Database, region: str) -> None:
        if region not in self.cluster.regions():
            raise SchemaError(f"region {region!r} has no nodes")
        database.region_enum.add(region)
        if database.primary_region is None:
            database.primary_region = region
        for table in database.tables.values():
            if table.locality.is_regional_by_row:
                for index in table.indexes:
                    self._add_partition(database, table, index, region)
            self._reconfigure_table(database, table)

    def drop_region(self, database: Database, region: str) -> None:
        if region == database.primary_region:
            raise SchemaError("cannot drop the PRIMARY region")
        if region not in database.regions:
            raise SchemaError(f"{region!r} is not a database region")
        # §2.4.1: mark READ ONLY, validate, then drop (all-or-nothing).
        database.region_enum.set_read_only(region, True)
        try:
            self._validate_region_empty(database, region)
        except SchemaError:
            database.region_enum.set_read_only(region, False)
            raise
        database.region_enum.remove(region)
        for table in database.tables.values():
            if table.locality.is_regional_by_row:
                for index in table.indexes:
                    rng = index.partitions.pop(region, None)
                    if rng is not None:
                        self._destroy_range(rng)
            self._reconfigure_table(database, table)

    def _validate_region_empty(self, database: Database,
                               region: str) -> None:
        """No REGIONAL BY ROW row may be homed in the dropped region.

        Because the region column is the partition key, this only scans
        the per-region partition, not the whole table (paper footnote 2).
        """
        for table in database.tables.values():
            if not table.locality.is_regional_by_row:
                continue
            token = table.primary_index.partitions.get(region)
            if token is None:
                continue
            for rng in live_ranges(token):
                now = rng.leaseholder_node.clock.now()
                live = rng.leaseholder_replica.store.snapshot_at(now)
                if live:
                    raise SchemaError(
                        f"cannot drop region {region!r}: table "
                        f"{table.name!r} still has {len(live)} row(s) "
                        f"there")

    def set_primary_region(self, database: Database, region: str) -> None:
        if region not in self.cluster.regions():
            raise SchemaError(f"region {region!r} has no nodes")
        if region not in database.regions:
            # Setting a primary region on a single-region database is
            # how an existing database becomes multi-region (§7.5.1).
            database.region_enum.add(region)
        database.primary_region = region
        for table in database.tables.values():
            if not table.locality.is_regional_by_row:
                self._reconfigure_table(database, table)

    def set_survival_goal(self, database: Database, goal: str) -> None:
        if goal == SurvivalGoal.REGION and len(database.regions) < 3:
            raise ConfigurationError(
                "REGION survivability requires at least 3 regions")
        if goal == SurvivalGoal.REGION and database.placement_restricted:
            raise ConfigurationError(
                "REGION survivability is incompatible with PLACEMENT "
                "RESTRICTED")
        database.survival_goal = goal
        for table in database.tables.values():
            self._reconfigure_table(database, table)

    def set_placement(self, database: Database, restricted: bool) -> None:
        if restricted and database.survival_goal == SurvivalGoal.REGION:
            raise ConfigurationError(
                "PLACEMENT RESTRICTED cannot be combined with REGION "
                "survivability (paper §3.3.4)")
        database.placement_restricted = restricted
        for table in database.tables.values():
            self._reconfigure_table(database, table)

    # -- tables ---------------------------------------------------------------------

    def create_table(self, database: Database,
                     stmt: ast.CreateTable) -> Table:
        table = Table(stmt.name, database)
        for column_def in stmt.columns:
            table.add_column(self._column_from_def(column_def))
        if not stmt.primary_key:
            raise SchemaError(
                f"table {stmt.name!r} needs a primary key")
        table.primary_key = tuple(stmt.primary_key)
        locality = self._locality_from_ast(database, stmt.locality)
        table.locality = locality
        if locality.is_regional_by_row:
            self._ensure_region_column(database, table)
        # Unique constraints (beyond the PK).
        for cols in stmt.unique_constraints:
            if tuple(cols) != table.primary_key:
                table.unique_constraints.append(tuple(cols))
        table.foreign_keys = list(stmt.foreign_keys)
        self._build_indexes(database, table)
        if any(c.on_update is not None and _is_rehome(c.on_update)
               for c in table.columns.values()):
            table.auto_rehoming = True
        database.add_table(table)
        return table

    def _column_from_def(self, column_def: ast.ColumnDef) -> Column:
        return Column(
            name=column_def.name,
            type_name=column_def.type_name,
            not_null=column_def.not_null,
            visible=column_def.visible,
            default=column_def.default,
            computed=column_def.computed,
            on_update=column_def.on_update,
            references=column_def.references,
        )

    def _locality_from_ast(self, database: Database,
                           locality_ast: Optional[Any]) -> TableLocality:
        if locality_ast is None or isinstance(
                locality_ast, ast.LocalityRegionalByTable):
            region = getattr(locality_ast, "region", None)
            if region is not None and region not in database.regions:
                raise SchemaError(f"{region!r} is not a database region")
            return TableLocality(TableLocality.REGIONAL_BY_TABLE,
                                 region=region)
        if isinstance(locality_ast, ast.LocalityGlobal):
            return TableLocality(TableLocality.GLOBAL)
        if isinstance(locality_ast, ast.LocalityRegionalByRow):
            return TableLocality(TableLocality.REGIONAL_BY_ROW,
                                 column=locality_ast.column)
        raise SchemaError(f"unsupported locality {locality_ast!r}")

    def _ensure_region_column(self, database: Database,
                              table: Table) -> None:
        """Create the hidden ``crdb_region`` column if absent (§2.3.2)."""
        name = table.locality.column or REGION_COLUMN
        table.locality.column = name
        if name in table.columns:
            return
        table.add_column(Column(
            name=name,
            type_name="crdb_internal_region",
            not_null=True,
            visible=False,
            default=ast.FuncCall(name="gateway_region"),
        ))

    def _build_indexes(self, database: Database, table: Table) -> None:
        """(Re)create all index Ranges for the table's current locality."""
        table.indexes = []
        primary = Index(
            index_id=table.allocate_index_id(),
            name=f"{table.name}@primary",
            key_columns=table.primary_key,
            unique=True,
            is_primary=True,
        )
        table.indexes.append(primary)
        for cols in table.unique_constraints:
            table.indexes.append(Index(
                index_id=table.allocate_index_id(),
                name=f"{table.name}@{'_'.join(cols)}_key",
                key_columns=tuple(cols),
                unique=True,
            ))
        for index in table.indexes:
            self._provision_index(database, table, index)

    def _zone_config(self, database: Database, table: Table,
                     home_region: str):
        # PLACEMENT RESTRICTED does not affect GLOBAL tables (§3.3.4).
        restricted = (database.placement_restricted
                      and not table.locality.is_global)
        regions = database.regions
        if not regions:
            # Single-region database: everything lives in one region.
            regions = [home_region]
        return zone_config_for_home(
            home_region, regions, database.survival_goal,
            placement_restricted=restricted)

    def _provision_index(self, database: Database, table: Table,
                         index: Index) -> None:
        if table.locality.is_regional_by_row:
            for region in database.regions:
                self._add_partition(database, table, index, region)
        else:
            home = table.home_region() or self.cluster.regions()[0]
            config = self._zone_config(database, table, home)
            rng = provision_range(
                self.cluster, config,
                global_reads=table.locality.is_global,
                name=f"{index.name}",
                side_transport_interval_ms=self.side_transport_interval_ms,
                closed_ts_lag_ms=self.closed_ts_lag_ms)
            index.partitions[DEFAULT_PARTITION] = rng

    def _add_partition(self, database: Database, table: Table,
                       index: Index, region: str) -> None:
        config = self._zone_config(database, table, region)
        rng = provision_range(
            self.cluster, config, global_reads=False,
            name=f"{index.name}@{region}",
            side_transport_interval_ms=self.side_transport_interval_ms,
            closed_ts_lag_ms=self.closed_ts_lag_ms)
        index.partitions[region] = rng

    def _reconfigure_table(self, database: Database, table: Table) -> None:
        """Re-derive zone configs for all of the table's live ranges."""
        for index in table.indexes:
            for partition, token in index.partitions.items():
                home = (partition if partition != DEFAULT_PARTITION
                        else table.home_region()
                        or self.cluster.regions()[0])
                config = self._zone_config(database, table, home)
                for rng in live_ranges(token):
                    reconfigure_range(
                        self.cluster, rng, config,
                        global_reads=table.locality.is_global,
                        closed_ts_lag_ms=self.closed_ts_lag_ms)

    def _destroy_range(self, token) -> None:
        for rng in live_ranges(token):
            rng.destroy()
            for replica in list(rng.replicas.values()):
                replica.node.remove_replica(rng.range_id)

    def elasticize_table(self, table: Table) -> List[Any]:
        """Opt a table's fixed partition ranges into elastic spans.

        Each partition's Range becomes a single-descriptor
        :class:`~repro.kv.keyspace.TableSpan` registered with the
        cluster keyspace, so the rebalancing queue can split/merge it;
        routing tokens in the catalog are swapped in place.  Idempotent.
        """
        spans: List[Any] = []
        keyspace = self.cluster.keyspace
        for index in table.indexes:
            for partition, token in sorted(index.partitions.items()):
                if getattr(token, "descriptors", None) is not None:
                    spans.append(token)  # already a TableSpan
                    continue
                span = keyspace.adopt(token, name=token.name)
                index.partitions[partition] = span
                spans.append(span)
        return spans

    # -- locality changes (§2.4.2) ----------------------------------------------------

    def alter_table_locality(self, database: Database, table: Table,
                             locality_ast: Any) -> None:
        """ALTER TABLE ... SET LOCALITY: rebuild indexes and backfill."""
        new_locality = self._locality_from_ast(database, locality_ast)
        rows = self._snapshot_rows(table)
        old_ranges = table.all_ranges()
        table.locality = new_locality
        if new_locality.is_regional_by_row:
            self._ensure_region_column(database, table)
        self._build_indexes(database, table)
        self._backfill(database, table, rows)
        for rng in old_ranges:
            self._destroy_range(rng)

    def _snapshot_rows(self, table: Table) -> List[Dict[str, Any]]:
        """Latest committed rows from the primary index.

        The snapshot horizon is pushed ``max_clock_offset`` above the
        leaseholder clock so commits timestamped by skewed-ahead
        gateways are not missed.  Schema changes here are not concurrent
        with DML (CRDB's online schema-change protocol is out of scope).
        """
        rows: List[Dict[str, Any]] = []
        offset = self.cluster.max_clock_offset
        primary = table.primary_index
        for token in primary.partitions.values():
            for rng in live_ranges(token):
                horizon = rng.leaseholder_node.clock.now().add(offset)
                snapshot = rng.leaseholder_replica.store.snapshot_at(
                    horizon)
                rows.extend(snapshot.values())
        return rows

    def _ingest_ts(self, rng):
        """Backfill timestamp: far enough in the past that any fresh read
        (whose clock may lag by up to max_clock_offset) sees the data."""
        from ..sim.clock import Timestamp
        now = rng.leaseholder_node.clock.now()
        return Timestamp(now.physical - self.cluster.max_clock_offset - 1.0)

    def _backfill(self, database: Database, table: Table,
                  rows: List[Dict[str, Any]]) -> None:
        """Write rows into the (new) indexes via bulk ingestion."""
        region_col = table.region_column
        region_column_def = (table.columns.get(region_col)
                             if region_col is not None else None)
        by_partition: Dict[str, List[Dict[str, Any]]] = {}
        for row in rows:
            row = dict(row)
            if region_col is not None and row.get(region_col) is None:
                if region_column_def is not None and \
                        region_column_def.computed is not None:
                    # Computed region columns backfill from the row.
                    from .eval import evaluate
                    row[region_col] = evaluate(
                        region_column_def.computed, row)
                else:
                    # Rows converted from a non-RBR table default to the
                    # PRIMARY region.
                    row[region_col] = database.primary_region
            partition = (row[region_col] if region_col is not None
                         else DEFAULT_PARTITION)
            by_partition.setdefault(partition, []).append(row)
        for index in table.indexes:
            for partition, rng in index.partitions.items():
                ingest_rows = by_partition.get(partition, [])
                ts = self._ingest_ts(rng)
                items: List[Tuple[Any, Any]] = []
                for row in ingest_rows:
                    if index.is_primary:
                        key = tuple(row[c] for c in table.primary_key)
                        items.append((key, row))
                    else:
                        key = tuple(row[c] for c in index.key_columns)
                        pk = tuple(row[c] for c in table.primary_key)
                        items.append((key, pk))
                if items:
                    rng.bulk_ingest(items, ts)

    def add_column(self, database: Database, table: Table,
                   column_def: ast.ColumnDef) -> None:
        column = self._column_from_def(column_def)
        table.add_column(column)
        if column.on_update is not None and _is_rehome(column.on_update):
            table.auto_rehoming = True

    def create_secondary_index(self, database: Database, table: Table,
                               stmt: ast.CreateIndex) -> Index:
        index = Index(
            index_id=table.allocate_index_id(),
            name=f"{table.name}@{stmt.name}",
            key_columns=tuple(stmt.columns),
            unique=stmt.unique,
        )
        if stmt.unique:
            table.unique_constraints.append(tuple(stmt.columns))
        table.indexes.append(index)
        self._provision_index(database, table, index)
        rows = self._snapshot_rows(table)
        # Backfill only this index.
        region_col = table.region_column
        for partition, rng in index.partitions.items():
            items = []
            for row in rows:
                if region_col is not None and \
                        row.get(region_col) != partition and \
                        partition != DEFAULT_PARTITION:
                    continue
                key = tuple(row[c] for c in index.key_columns)
                pk = tuple(row[c] for c in table.primary_key)
                items.append((key, pk))
            if items:
                rng.bulk_ingest(items, self._ingest_ts(rng))
        return index

    def drop_table(self, database: Database, name: str) -> None:
        table = database.table(name)
        for rng in table.all_ranges():
            self._destroy_range(rng)
        del database.tables[name]


def _is_rehome(expr: Any) -> bool:
    return isinstance(expr, ast.FuncCall) and expr.name == "rehome_row"
