"""SQL expression evaluation.

Expressions are evaluated against a row (a dict of column values) and an
environment carrying the gateway region and a deterministic UUID source.
The built-ins are the ones the paper uses:

* ``gateway_region()`` — the region of the node the client connected to;
* ``gen_random_uuid()`` — default for UUID key columns (§4.1 rule 1);
* ``rehome_row()`` — ON UPDATE marker enabling automatic rehoming
  (§2.3.2); evaluates to the gateway region.
"""

from __future__ import annotations

import uuid
from dataclasses import dataclass
from typing import Any, Dict, Optional, Set

from ..errors import SchemaError
from . import ast

__all__ = ["EvalEnv", "evaluate", "columns_referenced"]


@dataclass
class EvalEnv:
    """Everything an expression can observe besides the row."""

    gateway_region: Optional[str] = None
    uuid_source: Optional[Any] = None  # random.Random for determinism

    def make_uuid(self) -> str:
        if self.uuid_source is not None:
            return str(uuid.UUID(int=self.uuid_source.getrandbits(128)))
        return str(uuid.uuid4())


#: Shared read-only default environment; avoids one EvalEnv() per call.
_DEFAULT_ENV = EvalEnv()
_EMPTY_ROW: Dict[str, Any] = {}


def evaluate(expr: Any, row: Optional[Dict[str, Any]] = None,
             env: Optional[EvalEnv] = None) -> Any:
    """Evaluate an expression AST to a Python value."""
    if row is None:
        row = _EMPTY_ROW
    if env is None:
        env = _DEFAULT_ENV
    handler = _DISPATCH.get(type(expr))
    if handler is None:
        raise SchemaError(f"cannot evaluate expression {expr!r}")
    return handler(expr, row, env)


def _eval_literal(expr, row, env):
    return expr.value


def _eval_column(expr, row, env):
    name = expr.name
    if name not in row:
        raise SchemaError(f"unknown column {name!r} in expression")
    return row[name]


def _eval_case(expr, row, env):
    for condition, result in expr.whens:
        if evaluate(condition, row, env):
            return evaluate(result, row, env)
    return evaluate(expr.default, row, env)


def _eval_comparison(expr, row, env):
    left = evaluate(expr.left, row, env)
    right = evaluate(expr.right, row, env)
    return _compare(expr.op, left, right)


def _eval_and(expr, row, env):
    for part in expr.parts:
        if not evaluate(part, row, env):
            return False
    return True


def _eval_in(expr, row, env):
    value = evaluate(expr.column, row, env)
    for v in expr.values:
        if value == evaluate(v, row, env):
            return True
    return False




def _call_builtin(expr: ast.FuncCall, row: Dict[str, Any],
                  env: EvalEnv) -> Any:
    name = expr.name
    if name == "gateway_region":
        if env.gateway_region is None:
            raise SchemaError("gateway_region() outside a session")
        return env.gateway_region
    if name == "rehome_row":
        # ON UPDATE rehome_row(): move the row to the writing region.
        if env.gateway_region is None:
            raise SchemaError("rehome_row() outside a session")
        return env.gateway_region
    if name == "gen_random_uuid":
        return env.make_uuid()
    if name == "lower":
        return str(evaluate(expr.args[0], row, env)).lower()
    if name == "upper":
        return str(evaluate(expr.args[0], row, env)).upper()
    if name == "concat":
        return "".join(str(evaluate(a, row, env)) for a in expr.args)
    if name == "mod":
        left = evaluate(expr.args[0], row, env)
        right = evaluate(expr.args[1], row, env)
        return left % right
    raise SchemaError(f"unknown function {name!r}")


def _compare(op: str, left: Any, right: Any) -> bool:
    if left is None or right is None:
        return False  # SQL NULL semantics (enough for this dialect)
    if op == "=":
        return left == right
    if op == "<>":
        return left != right
    if op == "<":
        return left < right
    if op == "<=":
        return left <= right
    if op == ">":
        return left > right
    if op == ">=":
        return left >= right
    raise SchemaError(f"unknown comparison operator {op!r}")


_DISPATCH = {
    ast.Literal: _eval_literal,
    ast.ColumnRef: _eval_column,
    ast.FuncCall: _call_builtin,
    ast.CaseWhen: _eval_case,
    ast.Comparison: _eval_comparison,
    ast.LogicalAnd: _eval_and,
    ast.InList: _eval_in,
}


def columns_referenced(expr: Any) -> Set[str]:
    """All column names an expression depends on (for planning)."""
    if isinstance(expr, ast.ColumnRef):
        return {expr.name}
    if isinstance(expr, ast.FuncCall):
        out: Set[str] = set()
        for arg in expr.args:
            out |= columns_referenced(arg)
        return out
    if isinstance(expr, ast.CaseWhen):
        out = columns_referenced(expr.default)
        for condition, result in expr.whens:
            out |= columns_referenced(condition)
            out |= columns_referenced(result)
        return out
    if isinstance(expr, ast.Comparison):
        return columns_referenced(expr.left) | columns_referenced(expr.right)
    if isinstance(expr, ast.LogicalAnd):
        out = set()
        for part in expr.parts:
            out |= columns_referenced(part)
        return out
    if isinstance(expr, ast.InList):
        out = columns_referenced(expr.column)
        for value in expr.values:
            out |= columns_referenced(value)
        return out
    return set()
