"""Sessions: the public SQL entry point.

Usage::

    from repro.cluster import standard_cluster
    from repro.sql import Engine

    cluster = standard_cluster(["us-east1", "us-west1", "europe-west2"])
    engine = Engine(cluster)
    session = engine.connect("us-east1")
    session.execute('CREATE DATABASE movr PRIMARY REGION "us-east1" '
                    'REGIONS "us-west1", "europe-west2"')
    session.execute("USE movr")
    session.execute("CREATE TABLE users (id int PRIMARY KEY, "
                    "email string UNIQUE) LOCALITY REGIONAL BY ROW")

``Session.execute`` is the synchronous driver (it advances the
simulation until the statement completes).  Workload generators running
many concurrent clients use the coroutine API (``execute_co`` /
``run_txn_co``) inside simulation processes instead.
"""

from __future__ import annotations

import random
import re
from typing import Any, Callable, Generator, List, Optional

from ..admission.queue import Priority
from ..errors import SchemaError, SqlSyntaxError, StaleReadBoundError
from ..kv.distsender import ReadRouting
from ..sim.clock import Timestamp
from ..sim.core import all_of
from ..txn.coordinator import TransactionCoordinator
from . import ast
from .catalog import Catalog, Database
from .eval import EvalEnv, evaluate
from .executor import ExecContext, Executor
from .parser import parse, parse_one
from .schema_changes import SchemaChangeEngine

__all__ = ["Engine", "Session"]

_DDL_TYPES = (
    ast.CreateDatabase, ast.AlterDatabaseAddRegion,
    ast.AlterDatabaseDropRegion, ast.AlterDatabaseSurvive,
    ast.AlterDatabasePlacement, ast.AlterDatabaseSetPrimaryRegion,
    ast.CreateTable, ast.AlterTableSetLocality, ast.AlterTableAddColumn,
    ast.CreateIndex, ast.DropTable,
)

_INTERVAL_RE = re.compile(r"^(-?\d+(?:\.\d+)?)(ms|s|m|h)$")
_INTERVAL_MS = {"ms": 1.0, "s": 1000.0, "m": 60_000.0, "h": 3_600_000.0}


def parse_interval_ms(text: str) -> float:
    """Parse interval strings like '-30s', '500ms', '2m' to milliseconds."""
    match = _INTERVAL_RE.match(text.strip())
    if not match:
        raise SqlSyntaxError(f"bad interval {text!r}")
    return float(match.group(1)) * _INTERVAL_MS[match.group(2)]


class Engine:
    """One logical SQL layer for a cluster: catalog + schema + txns."""

    def __init__(self, cluster, side_transport_interval_ms: float = 100.0,
                 closed_ts_lag_ms: Optional[float] = None,
                 spanner_style_commit_wait: bool = False,
                 seed: int = 0, recorder=None, txn_protocol=None):
        self.cluster = cluster
        self.catalog = Catalog()
        self.schema = SchemaChangeEngine(
            cluster, self.catalog,
            side_transport_interval_ms=side_transport_interval_ms,
            closed_ts_lag_ms=closed_ts_lag_ms)
        # txn_protocol=None inherits the cluster default (which itself
        # defaults to the CRDB pipeline).
        self.coordinator = TransactionCoordinator(
            cluster, spanner_style_commit_wait=spanner_style_commit_wait,
            protocol=txn_protocol)
        #: Optional verify.HistoryRecorder: captures every transaction
        #: and stale-read statement for Elle-style anomaly checking.
        self.coordinator.recorder = recorder
        self.uuid_source = random.Random(seed)

    @property
    def recorder(self):
        return self.coordinator.recorder

    def connect(self, region: str, index: int = 0) -> "Session":
        """Open a session gatewayed at a node in ``region``."""
        gateway = self.cluster.gateway_for_region(region, index)
        return Session(self, gateway)


class _StaleReadTxn:
    """Duck-typed read-only 'transaction' backed by stale reads (§5.3).

    Presents the subset of the Transaction interface the executor's read
    path uses, but serves each key with exact- or bounded-staleness
    reads from nearby replicas.
    """

    def __init__(self, engine: Engine, gateway, kind: str,
                 ts: Timestamp, nearest_only: bool = False, span=None,
                 label: Optional[str] = None):
        self.engine = engine
        self.gateway = gateway
        self.kind = kind  # 'exact' | 'bounded'
        self.read_ts = ts
        self.nearest_only = nearest_only
        #: Parent span for the stale reads (the SQL statement's span).
        self.span = span
        #: History-recorder record for this statement (verify subsystem).
        recorder = engine.recorder
        self._record = (recorder.begin_stale(gateway, kind, ts, label=label)
                        if recorder is not None else None)

    def _note_read(self, rng, key, result, effective_ts=None) -> None:
        if self._record is not None:
            self.engine.recorder.on_stale_read(
                self._record, rng, key, result, effective_ts=effective_ts)

    def finish(self, ok: bool = True) -> None:
        if self._record is not None:
            self.engine.recorder.finish_stale(self._record, ok=ok)

    def _read_future(self, rng, key):
        ds = self.engine.coordinator.distsender
        if self.kind == "exact":
            return ds.exact_staleness_read(self.gateway, rng, key,
                                           self.read_ts, span=self.span)
        return ds.bounded_staleness_read(self.gateway, rng, key,
                                         self.read_ts,
                                         nearest_only=self.nearest_only,
                                         span=self.span)

    def read(self, rng, key, routing=ReadRouting.NEAREST) -> Generator:
        result = yield self._read_future(rng, key)
        if self.kind == "bounded":
            result, served_ts = result
            self._note_read(rng, key, result, effective_ts=served_ts)
        else:
            self._note_read(rng, key, result)
        return result.value

    def read_batch(self, requests, routing=ReadRouting.NEAREST) -> Generator:
        if self.kind == "bounded" and len(requests) > 1:
            # Multi-key bounded staleness negotiates one timestamp across
            # all touched ranges first (§5.3.2), then reads at it.
            ds = self.engine.coordinator.distsender
            try:
                negotiated = yield ds.negotiate_bounded_staleness(
                    self.gateway, requests, self.read_ts, span=self.span)
            except StaleReadBoundError:
                if self.nearest_only:
                    raise
                # Redirect the whole batch to leaseholders at the bound.
                futures = [
                    ds._leaseholder_read(self.gateway, rng, key,
                                         self.read_ts, None, None,
                                         span=self.span)
                    for rng, key in requests
                ]
                results = yield all_of(self.engine.cluster.sim, futures)
                for (rng, key), (result, served_ts) in zip(requests, results):
                    self._note_read(rng, key, result,
                                    effective_ts=served_ts)
                return [result.value for result, _ts in results]
            futures = [ds.exact_staleness_read(self.gateway, rng, key,
                                               negotiated, span=self.span)
                       for rng, key in requests]
            results = yield all_of(self.engine.cluster.sim, futures)
            for (rng, key), result in zip(requests, results):
                self._note_read(rng, key, result, effective_ts=negotiated)
            return [r.value for r in results]
        futures = [self._read_future(rng, key) for rng, key in requests]
        results = yield all_of(self.engine.cluster.sim, futures)
        if self.kind == "bounded":
            for (rng, key), (result, served_ts) in zip(requests, results):
                self._note_read(rng, key, result, effective_ts=served_ts)
            results = [r[0] for r in results]
        else:
            for (rng, key), result in zip(requests, results):
                self._note_read(rng, key, result)
        return [r.value for r in results]


class TxnHandle:
    """Statement execution bound to one open transaction."""

    def __init__(self, session: "Session", txn):
        self.session = session
        self.txn = txn

    def execute(self, sql: str) -> Generator:
        stmt = parse_one(sql)
        result = yield from self.execute_stmt(stmt)
        return result

    def execute_stmt(self, stmt: Any) -> Generator:
        executor = self.session._executor()
        if isinstance(stmt, ast.Insert):
            result = yield from executor.insert(self.txn, stmt)
        elif isinstance(stmt, ast.Select):
            if stmt.as_of is not None:
                raise SchemaError(
                    "AS OF SYSTEM TIME not allowed inside a read-write "
                    "transaction")
            result = yield from executor.select(self.txn, stmt)
        elif isinstance(stmt, ast.Update):
            result = yield from executor.update(self.txn, stmt)
        elif isinstance(stmt, ast.Delete):
            result = yield from executor.delete(self.txn, stmt)
        else:
            raise SchemaError(
                f"statement not allowed in a transaction: {stmt!r}")
        return result


class Session:
    """A client connection pinned to a gateway node."""

    def __init__(self, engine: Engine, gateway):
        self.engine = engine
        self.gateway = gateway
        #: Session name threaded into recorded histories (verify).
        self.label: Optional[str] = None
        self.database: Optional[Database] = None
        #: Statements executed, split by class (Table 2 accounting).
        self.ddl_statement_count = 0
        self.dml_statement_count = 0
        #: Per-statement-kind counter handles (one registry lookup per
        #: kind per session instead of one per statement).
        self._stmt_counters = {}
        #: Open explicit transaction (BEGIN ... COMMIT), if any.
        self._open_txn = None
        #: Statement timeout: each auto-commit statement gets an
        #: absolute deadline ``now + statement_timeout_ms`` that flows
        #: through the coordinator into every DistSender RPC.
        self.statement_timeout_ms: Optional[float] = None
        #: Tenant identity for admission control (per-tenant queues and
        #: retry budgets); defaults to "sql" when admission is on.
        self.tenant: Optional[str] = None
        #: Admission priority for this session's statements.
        self.priority: int = Priority.NORMAL
        #: Per-session transaction-protocol override ("crdb",
        #: "epoch-occ", or a TxnProtocol instance); None uses the
        #: engine coordinator's default.
        self.txn_protocol = None

    @property
    def region(self) -> str:
        return self.gateway.locality.region

    # -- helpers ---------------------------------------------------------------------

    def _env(self) -> EvalEnv:
        return EvalEnv(gateway_region=self.region,
                       uuid_source=self.engine.uuid_source)

    def _executor(self) -> Executor:
        if self.database is None:
            raise SchemaError("no database selected (USE <db>)")
        context = ExecContext(self.database, self.gateway, self._env())
        return Executor(context)

    def _require_database(self, name: Optional[str] = None) -> Database:
        if name is not None:
            return self.engine.catalog.database(name)
        if self.database is None:
            raise SchemaError("no database selected (USE <db>)")
        return self.database

    # -- synchronous driver API ---------------------------------------------------------

    def execute(self, sql: str) -> Any:
        """Execute a SQL script synchronously (drives the simulation).

        Returns the result of the last statement: rows for SELECT,
        a row count for DML, None for DDL.
        """
        result = None
        for stmt in parse(sql):
            result = self.execute_stmt(stmt)
        return result

    def execute_stmt(self, stmt: Any) -> Any:
        if self._apply_non_dml(stmt, dry_run=True):
            return self._apply_non_dml(stmt)
        process = self.engine.cluster.sim.spawn(
            self.execute_stmt_co(stmt), name="sql-stmt")
        return self.engine.cluster.sim.run_until_future(process)

    # -- coroutine API (for workloads running inside the simulation) ----------------------

    def execute_co(self, sql: str) -> Generator:
        stmt = parse_one(sql)
        if self._apply_non_dml(stmt, dry_run=True):
            return self._apply_non_dml(stmt)
        result = yield from self.execute_stmt_co(stmt)
        return result

    def run_txn_co(self, txn_body: Callable[[TxnHandle], Generator],
                   parent_span=None,
                   deadline_ms: Optional[float] = None) -> Generator:
        """Run a multi-statement transaction (with automatic retries)."""
        def txn_fn(txn):
            handle = TxnHandle(self, txn)
            result = yield from txn_body(handle)
            return result
        if deadline_ms is None and self.statement_timeout_ms is not None:
            deadline_ms = (self.engine.cluster.sim.now
                           + self.statement_timeout_ms)
        result, _commit_ts = yield from self.engine.coordinator.run(
            self.gateway, txn_fn, parent_span=parent_span,
            label=self.label, deadline_ms=deadline_ms,
            tenant=self.tenant, protocol=self.txn_protocol)
        return result

    def execute_stmt_co(self, stmt: Any) -> Generator:
        if isinstance(stmt, (ast.Begin, ast.Commit, ast.Rollback)):
            result = yield from self._explicit_txn_stmt(stmt)
            return result
        self.dml_statement_count += 1
        obs = self.engine.cluster.sim.obs
        kind = type(stmt).__name__.lower()
        counter = self._stmt_counters.get(kind)
        if counter is None:
            counter = self._stmt_counters[kind] = obs.registry.counter(
                "sql.statements", kind=kind, region=self.region)
        counter.inc()
        # Gateway admission: every statement waits for (or is shed by)
        # its tenant/region admission queue before touching the cluster.
        admission = self.engine.cluster.admission
        deadline_ms = None
        if self.statement_timeout_ms is not None:
            deadline_ms = (self.engine.cluster.sim.now
                           + self.statement_timeout_ms)
        if admission is not None and self._open_txn is None:
            yield from admission.admit_co(
                tenant=self.tenant or "sql", region=self.region,
                priority=self.priority, deadline_ms=deadline_ms)
        if isinstance(stmt, ast.Select) and stmt.as_of is not None:
            if self._open_txn is not None:
                raise SchemaError(
                    "AS OF SYSTEM TIME not allowed inside a transaction")
            stmt_span = obs.tracer.start_span(
                "sql.stmt", kind="select", region=self.region,
                stale=stmt.as_of.kind)
            try:
                result = yield from self._stale_select(stmt, stmt_span)
            finally:
                stmt_span.finish()
            return result

        if self._open_txn is not None:
            # Inside BEGIN ... COMMIT: no automatic retry — a retryable
            # error surfaces to the client (SQLSTATE 40001 style) and
            # aborts the transaction, as in real SQL sessions.  The
            # statement rides the transaction's own root span.
            handle = TxnHandle(self, self._open_txn)
            try:
                result = yield from handle.execute_stmt(stmt)
            except Exception:
                txn, self._open_txn = self._open_txn, None
                yield from txn.rollback()
                txn.span.finish(status=txn.status)
                raise
            return result

        def body(handle: TxnHandle) -> Generator:
            result = yield from handle.execute_stmt(stmt)
            return result

        if obs.enabled:
            stmt_span = obs.tracer.start_span(
                "sql.stmt", kind=kind, region=self.region)
        else:
            stmt_span = None
        try:
            result = yield from self.run_txn_co(body, parent_span=stmt_span,
                                                deadline_ms=deadline_ms)
        finally:
            if stmt_span is not None:
                stmt_span.finish()
        return result

    def _explicit_txn_stmt(self, stmt: Any) -> Generator:
        if isinstance(stmt, ast.Begin):
            if self._open_txn is not None:
                raise SchemaError("transaction already open")
            self._open_txn = self.engine.coordinator.begin(
                self.gateway, label=self.label,
                protocol=self.txn_protocol)
            return None
        if self._open_txn is None:
            raise SchemaError("no transaction open")
        txn, self._open_txn = self._open_txn, None
        try:
            if isinstance(stmt, ast.Commit):
                try:
                    commit_ts = yield from txn.commit()
                except Exception:
                    yield from txn.rollback()
                    raise
                return commit_ts
            yield from txn.rollback()
            return None
        finally:
            txn.span.finish(status=txn.status)

    # -- DDL and other instantaneous statements ---------------------------------------------

    def _apply_non_dml(self, stmt: Any, dry_run: bool = False) -> Any:
        """Apply DDL/metadata statements; with dry_run, just classify."""
        is_non_dml = isinstance(stmt, _DDL_TYPES + (
            ast.ShowRegions, ast.UseDatabase, ast.Explain,
            ast.ShowRanges, ast.ShowZoneConfiguration))
        if dry_run:
            return is_non_dml
        if isinstance(stmt, ast.Explain):
            return self.explain(stmt.statement)
        if isinstance(stmt, ast.ShowRanges):
            return self._show_ranges(stmt.table)
        if isinstance(stmt, ast.ShowZoneConfiguration):
            return self._show_zone_configuration(stmt.table)
        schema = self.engine.schema
        if isinstance(stmt, _DDL_TYPES):
            # Let in-flight replication and intent resolution drain before
            # schema operations that snapshot or validate table data
            # (stands in for CRDB's online schema-change coordination).
            sim = self.engine.cluster.sim
            sim.run(until=sim.now + 600.0)
        if isinstance(stmt, ast.UseDatabase):
            self.database = self.engine.catalog.database(stmt.name)
            return None
        if isinstance(stmt, ast.ShowRegions):
            if stmt.from_database is not None:
                return self._require_database(stmt.from_database).regions
            return self.engine.cluster.regions()
        self.ddl_statement_count += 1
        self.engine.cluster.sim.obs.registry.counter(
            "sql.ddl_statements").inc()
        if isinstance(stmt, ast.CreateDatabase):
            database = schema.create_database(stmt)
            self.database = database
            return None
        if isinstance(stmt, ast.AlterDatabaseAddRegion):
            schema.add_region(self.engine.catalog.database(stmt.database),
                              stmt.region)
            return None
        if isinstance(stmt, ast.AlterDatabaseDropRegion):
            schema.drop_region(self.engine.catalog.database(stmt.database),
                               stmt.region)
            return None
        if isinstance(stmt, ast.AlterDatabaseSurvive):
            schema.set_survival_goal(
                self.engine.catalog.database(stmt.database), stmt.goal)
            return None
        if isinstance(stmt, ast.AlterDatabasePlacement):
            schema.set_placement(
                self.engine.catalog.database(stmt.database), stmt.restricted)
            return None
        if isinstance(stmt, ast.AlterDatabaseSetPrimaryRegion):
            schema.set_primary_region(
                self.engine.catalog.database(stmt.database), stmt.region)
            return None
        database = self._require_database()
        if isinstance(stmt, ast.CreateTable):
            schema.create_table(database, stmt)
            return None
        if isinstance(stmt, ast.AlterTableSetLocality):
            schema.alter_table_locality(database,
                                        database.table(stmt.table),
                                        stmt.locality)
            return None
        if isinstance(stmt, ast.AlterTableAddColumn):
            schema.add_column(database, database.table(stmt.table),
                              stmt.column)
            return None
        if isinstance(stmt, ast.CreateIndex):
            schema.create_secondary_index(database,
                                          database.table(stmt.table), stmt)
            return None
        if isinstance(stmt, ast.DropTable):
            schema.drop_table(database, stmt.name)
            return None
        raise SchemaError(f"unhandled statement {stmt!r}")

    # -- EXPLAIN (§4) ------------------------------------------------------------------------

    def explain(self, stmt: Any) -> List[str]:
        """The locality-aware plan for a DML statement, as text lines.

        Shows which partitions a lookup visits (point read / locality
        optimized search / fan-out) and, for INSERTs, which uniqueness
        checks run where and which the §4.1 rules omit.
        """
        database = self._require_database()
        executor = self._executor()
        lines: List[str] = []
        if isinstance(stmt, (ast.Select, ast.Update, ast.Delete)):
            table = database.table(stmt.table)
            planner = executor.context.planner(table)
            where = stmt.where
            limit = getattr(stmt, "limit", None)
            plan = planner.plan_point_query(where, limit=limit)
            lines.append(plan.explain())
            if isinstance(stmt, ast.Select) and stmt.for_update:
                lines.append("lock: exclusive (FOR UPDATE)")
            if isinstance(stmt, ast.Update):
                changed = frozenset(name for name, _ in stmt.assignments)
                sample = {c: None for c in table.columns}
                region_col = table.region_column
                if region_col:
                    sample[region_col] = self.region
                checks = planner.plan_uniqueness_checks(
                    sample, changed_columns=changed)
                for check in checks:
                    lines.append(check.explain())
        elif isinstance(stmt, ast.Insert):
            table = database.table(stmt.table)
            planner = executor.context.planner(table)
            row, generated = executor._build_row(
                table, stmt.columns, stmt.rows[0])
            partition = (row.get(table.region_column)
                         if table.region_column else "default")
            lines.append(
                f"insert {table.name} partition={partition or 'default'}")
            checks = planner.plan_uniqueness_checks(
                row, generated_columns=generated)
            if not checks:
                lines.append("uniqueness-checks: none")
            for check in checks:
                lines.append(check.explain())
        else:
            raise SchemaError(f"cannot EXPLAIN {type(stmt).__name__}")
        return lines

    # -- placement introspection (§3) -----------------------------------------------------

    def _show_ranges(self, table_name: str) -> List[dict]:
        """One row per *live* Range: span, lease, and replica regions.

        Partitions hold routing tokens; an elastic partition (TableSpan)
        is enumerated through its current descriptors, so the output
        tracks splits and merges as they happen.  Fixed ranges report a
        full span at generation 1.
        """
        from ..kv.keyspace import live_ranges
        database = self._require_database()
        table = database.table(table_name)
        out = []
        for index in table.indexes:
            for partition, token in sorted(index.partitions.items()):
                for rng in live_ranges(token):
                    voters = sorted(p.node.locality.region
                                    for p in rng.group.voters())
                    non_voters = sorted(p.node.locality.region
                                        for p in rng.group.non_voters())
                    descriptor = rng.descriptor
                    out.append({
                        "index": index.name,
                        "partition": partition or "default",
                        "range": rng.name,
                        "span": (descriptor.span_repr()
                                 if descriptor is not None
                                 else "[/Min, /Max)"),
                        "generation": (descriptor.generation
                                       if descriptor is not None else 1),
                        "lease_region":
                            rng.leaseholder_node.locality.region,
                        "voters": voters,
                        "non_voters": non_voters,
                    })
        return out

    def _show_zone_configuration(self, table_name: str) -> List[dict]:
        """The derived zone config per partition (Listing 1 fields)."""
        database = self._require_database()
        table = database.table(table_name)
        schema = self.engine.schema
        out = []
        partitions = sorted(table.primary_index.partitions)
        for partition in partitions:
            home = (partition if partition else
                    table.home_region()
                    or self.engine.cluster.regions()[0])
            config = schema._zone_config(database, table, home)
            out.append({
                "partition": partition or "default",
                "num_replicas": config.num_replicas,
                "num_voters": config.num_voters,
                "constraints": dict(config.constraints),
                "voter_constraints": dict(config.voter_constraints),
                "lease_preferences": list(config.lease_preferences),
            })
        return out

    # -- stale reads (§5.3) ----------------------------------------------------------------

    def _stale_select(self, stmt: ast.Select, span=None) -> Generator:
        as_of = stmt.as_of
        now = self.gateway.clock.now()
        env = self._env()
        if as_of.kind == "exact":
            value = evaluate(as_of.value, {}, env)
            ts = self._resolve_time_value(value, now)
            stale = _StaleReadTxn(self.engine, self.gateway, "exact", ts,
                                  span=span, label=self.label)
        elif as_of.kind == "min_timestamp":
            value = evaluate(as_of.value, {}, env)
            ts = self._resolve_time_value(value, now)
            stale = _StaleReadTxn(self.engine, self.gateway, "bounded", ts,
                                  span=span, label=self.label)
        elif as_of.kind == "max_staleness":
            value = evaluate(as_of.value, {}, env)
            bound_ms = (parse_interval_ms(value) if isinstance(value, str)
                        else float(value))
            ts = Timestamp(now.physical - abs(bound_ms))
            stale = _StaleReadTxn(self.engine, self.gateway, "bounded", ts,
                                  span=span, label=self.label)
        else:
            raise SqlSyntaxError(f"unknown AS OF kind {as_of.kind!r}")
        executor = self._executor()
        query = ast.Select(table=stmt.table, columns=stmt.columns,
                           where=stmt.where, as_of=None, limit=stmt.limit)
        result = yield from executor.select(stale, query)
        stale.finish()
        return result

    def _resolve_time_value(self, value: Any, now: Timestamp) -> Timestamp:
        """Interpret an AS OF operand: '-30s' intervals are relative to
        now; bare numbers are absolute simulated milliseconds."""
        if isinstance(value, str):
            return Timestamp(now.physical + parse_interval_ms(value))
        return Timestamp(float(value))
