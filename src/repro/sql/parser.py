"""Recursive-descent parser for the multi-region SQL dialect.

Covers the paper's DDL (§2) — multi-region database management, table
localities, survivability goals, placement — and the DML used by the
workloads (point/limited SELECT with ``AS OF SYSTEM TIME``, INSERT,
UPDATE, DELETE).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..errors import SqlSyntaxError
from . import ast
from .lexer import Token, tokenize

__all__ = ["parse", "parse_one"]


#: Parsed-statement cache: SQL text -> statement list.  Workloads issue
#: the same statement texts over and over (YCSB reuses a small key set;
#: TPC-C cycles through a few hundred id combinations), and the AST is
#: read-only after parse — nothing in the executor/optimizer assigns to
#: node fields — so hits return the cached statements directly.
#: Bounded: once full, novel statements simply parse uncached.
_PARSE_CACHE: dict = {}
_PARSE_CACHE_MAX = 4096


def parse(sql: str) -> List[Any]:
    """Parse a semicolon-separated script into a list of statements.

    Results are cached per SQL text; callers must treat the returned
    list and its statements as immutable.
    """
    cached = _PARSE_CACHE.get(sql)
    if cached is None:
        cached = _Parser(tokenize(sql)).parse_script()
        if len(_PARSE_CACHE) < _PARSE_CACHE_MAX:
            _PARSE_CACHE[sql] = cached
    return cached


def parse_one(sql: str) -> Any:
    """Parse exactly one statement."""
    statements = parse(sql)
    if len(statements) != 1:
        raise SqlSyntaxError(
            f"expected exactly one statement, found {len(statements)}")
    return statements[0]


class _Parser:
    def __init__(self, tokens: List[Token]):
        self._tokens = tokens
        self._index = 0

    # -- token plumbing ---------------------------------------------------------
    #
    # The helpers below index self._tokens directly instead of chaining
    # through _peek: the parser runs on every workload statement and the
    # extra frames dominated its profile.  self._index never passes the
    # trailing eof token, so offset-0 reads need no bounds check.

    def _peek(self, offset: int = 0) -> Token:
        if offset == 0:
            return self._tokens[self._index]
        return self._tokens[min(self._index + offset, len(self._tokens) - 1)]

    def _next(self) -> Token:
        token = self._tokens[self._index]
        if token.kind != "eof":
            self._index += 1
        return token

    def _at_keyword(self, *words: str) -> bool:
        tokens = self._tokens
        index = self._index
        last = len(tokens) - 1
        for word in words:
            token = tokens[index if index < last else last]
            if token.kind != "ident" or token.upper != word:
                return False
            index += 1
        return True

    def _accept_keyword(self, *words: str) -> bool:
        if len(words) == 1:
            token = self._tokens[self._index]
            if token.kind == "ident" and token.upper == words[0]:
                self._index += 1
                return True
            return False
        if self._at_keyword(*words):
            self._index += len(words)
            return True
        return False

    def _expect_keyword(self, *words: str) -> None:
        if not self._accept_keyword(*words):
            token = self._peek()
            raise SqlSyntaxError(
                f"expected {' '.join(words)}, found {token.text!r} "
                f"at offset {token.pos}")

    def _accept_op(self, op: str) -> bool:
        token = self._tokens[self._index]
        if token.kind == "op" and token.text == op:
            self._index += 1
            return True
        return False

    def _expect_op(self, op: str) -> None:
        if not self._accept_op(op):
            token = self._peek()
            raise SqlSyntaxError(
                f"expected {op!r}, found {token.text!r} at offset {token.pos}")

    def _expect_ident(self) -> str:
        token = self._tokens[self._index]
        if token.kind != "ident":
            raise SqlSyntaxError(
                f"expected identifier, found {token.text!r} at {token.pos}")
        self._index += 1
        return token.text

    # -- entry points -------------------------------------------------------------

    def parse_script(self) -> List[Any]:
        statements = []
        while self._peek().kind != "eof":
            if self._accept_op(";"):
                continue
            statements.append(self._statement())
            if self._peek().kind != "eof":
                self._expect_op(";")
        return statements

    def _statement(self) -> Any:
        # Single dispatch on the leading keyword (the workload-hot DML
        # first), then the original multi-word checks within a branch.
        token = self._tokens[self._index]
        keyword = token.upper if token.kind == "ident" else ""
        if keyword == "INSERT":
            return self._insert()
        if keyword == "SELECT":
            return self._select()
        if keyword == "UPDATE":
            return self._update()
        if keyword == "DELETE":
            return self._delete()
        if keyword == "CREATE":
            if self._at_keyword("CREATE", "DATABASE"):
                return self._create_database()
            if self._at_keyword("CREATE", "TABLE"):
                return self._create_table()
            if self._at_keyword("CREATE", "UNIQUE", "INDEX") or \
                    self._at_keyword("CREATE", "INDEX"):
                return self._create_index()
        elif keyword == "ALTER":
            if self._at_keyword("ALTER", "DATABASE"):
                return self._alter_database()
            if self._at_keyword("ALTER", "TABLE"):
                return self._alter_table()
        elif keyword == "DROP":
            if self._at_keyword("DROP", "TABLE"):
                self._expect_keyword("DROP", "TABLE")
                return ast.DropTable(name=self._expect_ident())
        elif keyword == "SHOW":
            if self._at_keyword("SHOW", "REGIONS"):
                return self._show_regions()
            if self._at_keyword("SHOW", "RANGES"):
                self._expect_keyword("SHOW", "RANGES", "FROM", "TABLE")
                return ast.ShowRanges(table=self._expect_ident())
            if self._at_keyword("SHOW", "ZONE", "CONFIGURATION"):
                self._expect_keyword("SHOW", "ZONE", "CONFIGURATION", "FOR",
                                     "TABLE")
                return ast.ShowZoneConfiguration(table=self._expect_ident())
        elif keyword == "USE":
            self._expect_keyword("USE")
            return ast.UseDatabase(name=self._expect_ident())
        elif keyword == "EXPLAIN":
            self._expect_keyword("EXPLAIN")
            return ast.Explain(statement=self._statement())
        elif keyword == "BEGIN":
            self._index += 1
            return ast.Begin()
        elif keyword == "COMMIT":
            self._index += 1
            return ast.Commit()
        elif keyword == "ROLLBACK":
            self._index += 1
            return ast.Rollback()
        raise SqlSyntaxError(
            f"unsupported statement starting with {token.text!r} "
            f"at offset {token.pos}")

    # -- databases ----------------------------------------------------------------

    def _create_database(self) -> ast.CreateDatabase:
        self._expect_keyword("CREATE", "DATABASE")
        name = self._expect_ident()
        primary = None
        regions: List[str] = []
        if self._accept_keyword("PRIMARY", "REGION"):
            primary = self._expect_ident()
        if self._accept_keyword("REGIONS"):
            regions.append(self._expect_ident())
            while self._accept_op(","):
                regions.append(self._expect_ident())
        return ast.CreateDatabase(name=name, primary_region=primary,
                                  regions=regions)

    def _alter_database(self) -> Any:
        self._expect_keyword("ALTER", "DATABASE")
        name = self._expect_ident()
        if self._accept_keyword("ADD", "REGION"):
            return ast.AlterDatabaseAddRegion(name, self._expect_ident())
        if self._accept_keyword("DROP", "REGION"):
            return ast.AlterDatabaseDropRegion(name, self._expect_ident())
        if self._accept_keyword("SET", "PRIMARY", "REGION"):
            return ast.AlterDatabaseSetPrimaryRegion(name, self._expect_ident())
        if self._accept_keyword("SURVIVE", "REGION", "FAILURE"):
            return ast.AlterDatabaseSurvive(name, goal="region")
        if self._accept_keyword("SURVIVE", "ZONE", "FAILURE"):
            return ast.AlterDatabaseSurvive(name, goal="zone")
        if self._accept_keyword("PLACEMENT", "RESTRICTED"):
            return ast.AlterDatabasePlacement(name, restricted=True)
        if self._accept_keyword("PLACEMENT", "DEFAULT"):
            return ast.AlterDatabasePlacement(name, restricted=False)
        token = self._peek()
        raise SqlSyntaxError(
            f"unsupported ALTER DATABASE clause at {token.pos}")

    # -- tables -----------------------------------------------------------------------

    def _create_table(self) -> ast.CreateTable:
        self._expect_keyword("CREATE", "TABLE")
        name = self._expect_ident()
        self._expect_op("(")
        columns: List[ast.ColumnDef] = []
        primary_key: List[str] = []
        uniques: List[List[str]] = []
        foreign_keys: List[ast.ForeignKeyDef] = []
        while True:
            if self._accept_keyword("PRIMARY", "KEY"):
                primary_key = self._column_name_list()
            elif self._accept_keyword("UNIQUE"):
                uniques.append(self._column_name_list())
            elif self._accept_keyword("FOREIGN", "KEY"):
                fk_columns = self._column_name_list()
                self._expect_keyword("REFERENCES")
                parent = self._expect_ident()
                parent_columns = []
                if self._accept_op("("):
                    parent_columns.append(self._expect_ident())
                    while self._accept_op(","):
                        parent_columns.append(self._expect_ident())
                    self._expect_op(")")
                cascade = False
                while self._accept_keyword("ON"):
                    action_kind = self._expect_ident()  # UPDATE / DELETE
                    action = self._expect_ident()       # CASCADE / ...
                    if action_kind.upper() == "UPDATE" and \
                            action.upper() == "CASCADE":
                        cascade = True
                foreign_keys.append(ast.ForeignKeyDef(
                    columns=fk_columns, parent=parent,
                    parent_columns=parent_columns,
                    on_update_cascade=cascade))
            else:
                columns.append(self._column_def())
            if not self._accept_op(","):
                break
        self._expect_op(")")
        locality = self._locality_clause()
        for column in columns:
            if column.primary_key and column.name not in primary_key:
                primary_key.append(column.name)
            if column.unique and [column.name] not in uniques:
                uniques.append([column.name])
        return ast.CreateTable(name=name, columns=columns,
                               primary_key=primary_key,
                               unique_constraints=uniques,
                               foreign_keys=foreign_keys,
                               locality=locality)

    def _column_name_list(self) -> List[str]:
        self._expect_op("(")
        names = [self._expect_ident()]
        while self._accept_op(","):
            names.append(self._expect_ident())
        self._expect_op(")")
        return names

    def _column_def(self) -> ast.ColumnDef:
        name = self._expect_ident()
        type_name = self._expect_ident().lower()
        column = ast.ColumnDef(name=name, type_name=type_name)
        while True:
            if self._accept_keyword("PRIMARY", "KEY"):
                column.primary_key = True
            elif self._accept_keyword("NOT", "NULL"):
                column.not_null = True
            elif self._accept_keyword("NOT", "VISIBLE"):
                column.visible = False
            elif self._accept_keyword("UNIQUE"):
                column.unique = True
            elif self._accept_keyword("DEFAULT"):
                column.default = self._expression()
            elif self._accept_keyword("AS"):
                self._expect_op("(")
                column.computed = self._expression()
                self._expect_op(")")
                self._expect_keyword("STORED")
            elif self._accept_keyword("ON", "UPDATE"):
                column.on_update = self._expression()
            elif self._accept_keyword("REFERENCES"):
                column.references = self._expect_ident()
                if self._accept_op("("):
                    while not self._accept_op(")"):
                        self._next()
            else:
                break
        return column

    def _locality_clause(self) -> Optional[Any]:
        if not self._accept_keyword("LOCALITY"):
            return None
        return self._locality()

    def _locality(self) -> Any:
        if self._accept_keyword("GLOBAL"):
            return ast.LocalityGlobal()
        if self._accept_keyword("REGIONAL", "BY", "ROW"):
            column = None
            if self._accept_keyword("AS"):
                column = self._expect_ident()
            return ast.LocalityRegionalByRow(column=column)
        if self._accept_keyword("REGIONAL", "BY", "TABLE"):
            region = None
            if self._accept_keyword("IN"):
                if self._accept_keyword("PRIMARY", "REGION"):
                    region = None
                else:
                    region = self._expect_ident()
            return ast.LocalityRegionalByTable(region=region)
        token = self._peek()
        raise SqlSyntaxError(f"unsupported LOCALITY at offset {token.pos}")

    def _alter_table(self) -> Any:
        self._expect_keyword("ALTER", "TABLE")
        name = self._expect_ident()
        if self._accept_keyword("SET", "LOCALITY"):
            return ast.AlterTableSetLocality(name, self._locality())
        if self._accept_keyword("ADD", "COLUMN"):
            return ast.AlterTableAddColumn(name, self._column_def())
        token = self._peek()
        raise SqlSyntaxError(f"unsupported ALTER TABLE clause at {token.pos}")

    def _create_index(self) -> ast.CreateIndex:
        self._expect_keyword("CREATE")
        unique = self._accept_keyword("UNIQUE")
        self._expect_keyword("INDEX")
        name = self._expect_ident()
        self._expect_keyword("ON")
        table = self._expect_ident()
        columns = self._column_name_list()
        return ast.CreateIndex(name=name, table=table, columns=columns,
                               unique=unique)

    # -- DML ------------------------------------------------------------------------------

    def _insert(self) -> ast.Insert:
        self._expect_keyword("INSERT", "INTO")
        table = self._expect_ident()
        columns = self._column_name_list()
        self._expect_keyword("VALUES")
        rows = []
        while True:
            self._expect_op("(")
            row = [self._expression()]
            while self._accept_op(","):
                row.append(self._expression())
            self._expect_op(")")
            rows.append(row)
            if not self._accept_op(","):
                break
        return ast.Insert(table=table, columns=columns, rows=rows)

    def _select(self) -> ast.Select:
        self._expect_keyword("SELECT")
        columns: List[str] = []
        if self._accept_op("*"):
            columns = ["*"]
        else:
            columns.append(self._expect_ident())
            while self._accept_op(","):
                columns.append(self._expect_ident())
        self._expect_keyword("FROM")
        table = self._expect_ident()
        as_of = self._as_of_clause()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        if as_of is None:
            as_of = self._as_of_clause()
        limit = None
        if self._accept_keyword("LIMIT"):
            token = self._next()
            if token.kind != "number":
                raise SqlSyntaxError(f"expected LIMIT count at {token.pos}")
            limit = int(token.text)
        for_update = self._accept_keyword("FOR", "UPDATE")
        return ast.Select(table=table, columns=columns, where=where,
                          as_of=as_of, limit=limit, for_update=for_update)

    def _as_of_clause(self) -> Optional[ast.AsOf]:
        if not self._accept_keyword("AS", "OF", "SYSTEM", "TIME"):
            return None
        token = self._peek()
        if token.kind == "ident" and token.upper == "WITH_MIN_TIMESTAMP":
            self._next()
            self._expect_op("(")
            value = self._expression()
            self._expect_op(")")
            return ast.AsOf(kind="min_timestamp", value=value)
        if token.kind == "ident" and token.upper == "WITH_MAX_STALENESS":
            self._next()
            self._expect_op("(")
            value = self._expression()
            self._expect_op(")")
            return ast.AsOf(kind="max_staleness", value=value)
        value = self._expression()
        return ast.AsOf(kind="exact", value=value)

    def _update(self) -> ast.Update:
        self._expect_keyword("UPDATE")
        table = self._expect_ident()
        self._expect_keyword("SET")
        assignments = []
        while True:
            column = self._expect_ident()
            self._expect_op("=")
            assignments.append((column, self._expression()))
            if not self._accept_op(","):
                break
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        return ast.Update(table=table, assignments=assignments, where=where)

    def _delete(self) -> ast.Delete:
        self._expect_keyword("DELETE", "FROM")
        table = self._expect_ident()
        where = None
        if self._accept_keyword("WHERE"):
            where = self._expression()
        return ast.Delete(table=table, where=where)

    def _show_regions(self) -> ast.ShowRegions:
        self._expect_keyword("SHOW", "REGIONS")
        database = None
        if self._accept_keyword("FROM", "DATABASE"):
            database = self._expect_ident()
        return ast.ShowRegions(from_database=database)

    # -- expressions ----------------------------------------------------------------------

    #: '!=' normalizes to '<>'; everything else maps to itself.
    _CMP_OPS = {"<>": "<>", "!=": "<>", "<=": "<=", ">=": ">=",
                "=": "=", "<": "<", ">": ">"}

    def _expression(self) -> Any:
        return self._and_expr()

    def _and_expr(self) -> Any:
        left = self._comparison()
        if not self._accept_keyword("AND"):
            return left
        parts = [left, self._comparison()]
        while self._accept_keyword("AND"):
            parts.append(self._comparison())
        return ast.LogicalAnd(parts=tuple(parts))

    def _comparison(self) -> Any:
        left = self._primary()
        token = self._tokens[self._index]
        kind = token.kind
        if kind == "op":
            normalized = self._CMP_OPS.get(token.text)
            if normalized is not None:
                self._index += 1
                right = self._primary()
                return ast.Comparison(op=normalized, left=left, right=right)
            return left
        if kind == "ident" and token.upper == "IN":
            self._index += 1
            self._expect_op("(")
            values = [self._primary()]
            while self._accept_op(","):
                values.append(self._primary())
            self._expect_op(")")
            if not isinstance(left, ast.ColumnRef):
                raise SqlSyntaxError("IN requires a column on the left")
            return ast.InList(column=left, values=tuple(values))
        return left

    def _primary(self) -> Any:
        token = self._tokens[self._index]
        kind = token.kind
        if kind == "number":
            self._index += 1
            text = token.text
            return ast.Literal(float(text) if "." in text else int(text))
        if kind == "string":
            self._index += 1
            return ast.Literal(token.text)
        if kind == "ident":
            upper = token.upper
            if upper == "CASE":
                return self._case_when()
            if upper in ("TRUE", "FALSE"):
                self._index += 1
                return ast.Literal(upper == "TRUE")
            if upper == "NULL":
                self._index += 1
                return ast.Literal(None)
            # function call or column reference
            self._index += 1
            name = token.text
            if self._accept_op("("):
                args = []
                if not self._accept_op(")"):
                    args.append(self._expression())
                    while self._accept_op(","):
                        args.append(self._expression())
                    self._expect_op(")")
                return ast.FuncCall(name=name.lower(), args=tuple(args))
            return ast.ColumnRef(name=name)
        if kind == "op":
            text = token.text
            if text == "-" or text == "+":
                self._index += 1
                number = self._next()
                if number.kind != "number":
                    raise SqlSyntaxError(
                        f"expected number after {text!r} at {number.pos}")
                value = (float(number.text) if "." in number.text
                         else int(number.text))
                return ast.Literal(-value if text == "-" else value)
            if text == "(":
                self._index += 1
                inner = self._expression()
                self._expect_op(")")
                return inner
        raise SqlSyntaxError(
            f"unexpected token {token.text!r} at offset {token.pos}")

    def _case_when(self) -> ast.CaseWhen:
        self._expect_keyword("CASE")
        whens = []
        while self._accept_keyword("WHEN"):
            condition = self._expression()
            self._expect_keyword("THEN")
            result = self._expression()
            whens.append((condition, result))
        default = ast.Literal(None)
        if self._accept_keyword("ELSE"):
            default = self._expression()
        self._expect_keyword("END")
        return ast.CaseWhen(whens=tuple(whens), default=default)
