"""The SQL catalog: databases, tables, columns, indexes, partitions.

Multi-region state lives here:

* each :class:`Database` tracks its regions (the
  ``crdb_internal_region`` enum, §2.1), PRIMARY region, survivability
  goal, and placement mode;
* each :class:`Table` has a :class:`TableLocality`; REGIONAL BY ROW
  tables carry the (possibly hidden) region column;
* each :class:`Index` maps partitions to live
  :class:`~repro.kv.range.Range` objects — one partition per region for
  REGIONAL BY ROW, a single default partition otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..errors import SchemaError
from ..placement.goals import SurvivalGoal

__all__ = [
    "Catalog",
    "Column",
    "Database",
    "Index",
    "Table",
    "TableLocality",
    "REGION_COLUMN",
    "DEFAULT_PARTITION",
    "RegionEnum",
]

#: Name of the hidden partitioning column (paper §2.3.2).
REGION_COLUMN = "crdb_region"
#: Partition key for non-partitioned indexes.
DEFAULT_PARTITION = ""


class RegionEnum:
    """The ``crdb_internal_region`` ENUM for one database (§2.1).

    Values can be marked READ ONLY during region-drop validation
    (§2.4.1): queries may still read rows with that value but writes
    of the value are rejected.
    """

    def __init__(self, values: Optional[List[str]] = None):
        self._values: List[str] = list(values or [])
        self._read_only: set = set()

    def values(self) -> List[str]:
        return list(self._values)

    def add(self, value: str) -> None:
        if value in self._values:
            raise SchemaError(f"region {value!r} already present")
        self._values.append(value)

    def remove(self, value: str) -> None:
        if value not in self._values:
            raise SchemaError(f"region {value!r} not present")
        self._values.remove(value)
        self._read_only.discard(value)

    def set_read_only(self, value: str, read_only: bool = True) -> None:
        if value not in self._values:
            raise SchemaError(f"region {value!r} not present")
        if read_only:
            self._read_only.add(value)
        else:
            self._read_only.discard(value)

    def is_read_only(self, value: str) -> bool:
        return value in self._read_only

    def validate_writable(self, value: str) -> None:
        if value not in self._values:
            raise SchemaError(
                f"{value!r} is not a region of this database")
        if value in self._read_only:
            raise SchemaError(
                f"region {value!r} is READ ONLY (drop in progress)")


@dataclass
class TableLocality:
    """One of the three table localities (§2.3)."""

    kind: str  # 'regional_by_table' | 'regional_by_row' | 'global'
    region: Optional[str] = None   # REGIONAL BY TABLE home (None = PRIMARY)
    column: Optional[str] = None   # REGIONAL BY ROW partition column

    REGIONAL_BY_TABLE = "regional_by_table"
    REGIONAL_BY_ROW = "regional_by_row"
    GLOBAL = "global"

    @property
    def is_global(self) -> bool:
        return self.kind == self.GLOBAL

    @property
    def is_regional_by_row(self) -> bool:
        return self.kind == self.REGIONAL_BY_ROW

    @property
    def is_regional_by_table(self) -> bool:
        return self.kind == self.REGIONAL_BY_TABLE


@dataclass
class Column:
    name: str
    type_name: str
    not_null: bool = False
    visible: bool = True
    default: Optional[Any] = None     # expression AST
    computed: Optional[Any] = None    # expression AST (STORED)
    on_update: Optional[Any] = None   # expression AST
    references: Optional[str] = None


@dataclass
class Index:
    """A (possibly partitioned) index.  ``partitions`` maps a partition
    name (region, or DEFAULT_PARTITION) to its Range."""

    index_id: int
    name: str
    key_columns: Tuple[str, ...]
    unique: bool = False
    is_primary: bool = False
    partitions: Dict[str, Any] = field(default_factory=dict)

    def partition_for(self, region: Optional[str]):
        if DEFAULT_PARTITION in self.partitions:
            return self.partitions[DEFAULT_PARTITION]
        if region is None or region not in self.partitions:
            raise SchemaError(
                f"index {self.name!r} has no partition for {region!r}")
        return self.partitions[region]

    @property
    def partitioned(self) -> bool:
        return DEFAULT_PARTITION not in self.partitions


class Table:
    """A table: columns, constraints, locality, and its index ranges."""

    def __init__(self, name: str, database: "Database"):
        self.name = name
        self.database = database
        self.columns: Dict[str, Column] = {}
        self.primary_key: Tuple[str, ...] = ()
        #: Unique constraints beyond the primary key: tuples of columns.
        self.unique_constraints: List[Tuple[str, ...]] = []
        #: Table-level foreign keys (ast.ForeignKeyDef), §2.3.2.
        self.foreign_keys: List[Any] = []
        self.locality = TableLocality(TableLocality.REGIONAL_BY_TABLE)
        self.indexes: List[Index] = []
        self._next_index_id = 1
        #: Auto-rehoming (ON UPDATE rehome_row()) enabled?
        self.auto_rehoming = False
        #: Locality Optimized Search enabled (ablation switch)?
        self.locality_optimized_search = True
        #: Skip uniqueness checks entirely (ablation / UUID-only tables).
        self.suppress_uniqueness_checks = False

    # -- structural helpers -------------------------------------------------------

    def add_column(self, column: Column) -> None:
        if column.name in self.columns:
            raise SchemaError(
                f"column {column.name!r} already exists in {self.name!r}")
        self.columns[column.name] = column

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"no column {name!r} in table {self.name!r}") from None

    def visible_columns(self) -> List[str]:
        return [c.name for c in self.columns.values() if c.visible]

    def allocate_index_id(self) -> int:
        index_id = self._next_index_id
        self._next_index_id += 1
        return index_id

    @property
    def primary_index(self) -> Index:
        for index in self.indexes:
            if index.is_primary:
                return index
        raise SchemaError(f"table {self.name!r} has no primary index")

    def unique_indexes(self) -> List[Index]:
        return [i for i in self.indexes if i.unique and not i.is_primary]

    @property
    def region_column(self) -> Optional[str]:
        if self.locality.is_regional_by_row:
            return self.locality.column or REGION_COLUMN
        return None

    def all_ranges(self) -> List[Any]:
        """Every *live* range backing this table.

        Partitions hold routing tokens — a fixed Range, or a TableSpan
        whose descriptor list grows and shrinks as the rebalancing
        queue splits and merges — so enumeration must go through the
        current descriptors, not the provision-time token list.
        """
        from ..kv.keyspace import live_ranges
        ranges = []
        for index in self.indexes:
            for token in index.partitions.values():
                ranges.extend(live_ranges(token))
        return ranges

    def home_region(self) -> Optional[str]:
        """The leaseholder region for non-RBR tables (§3.3.1)."""
        if self.locality.is_global:
            return self.database.primary_region
        if self.locality.is_regional_by_table:
            return self.locality.region or self.database.primary_region
        return None


class Database:
    """A multi-region database (§2.1–2.2)."""

    def __init__(self, name: str, primary_region: Optional[str] = None,
                 regions: Optional[List[str]] = None):
        self.name = name
        self.primary_region = primary_region
        all_regions = []
        if primary_region:
            all_regions.append(primary_region)
        for region in regions or []:
            if region not in all_regions:
                all_regions.append(region)
        self.region_enum = RegionEnum(all_regions)
        self.survival_goal = SurvivalGoal.ZONE
        self.placement_restricted = False
        self.tables: Dict[str, Table] = {}

    @property
    def regions(self) -> List[str]:
        return self.region_enum.values()

    @property
    def is_multi_region(self) -> bool:
        return self.primary_region is not None

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise SchemaError(
                f"no table {name!r} in database {self.name!r}") from None

    def add_table(self, table: Table) -> None:
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table


class Catalog:
    """All databases in the cluster."""

    def __init__(self):
        self.databases: Dict[str, Database] = {}

    def database(self, name: str) -> Database:
        try:
            return self.databases[name]
        except KeyError:
            raise SchemaError(f"no database {name!r}") from None

    def add_database(self, database: Database) -> None:
        if database.name in self.databases:
            raise SchemaError(f"database {database.name!r} already exists")
        self.databases[database.name] = database
