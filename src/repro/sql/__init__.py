"""The SQL layer: dialect parser, catalog, schema changes, execution.

Most users only need :class:`Engine` (and :class:`Session` objects from
``engine.connect(region)``).
"""

from . import ast
from .catalog import (
    Catalog,
    Column,
    Database,
    DEFAULT_PARTITION,
    Index,
    REGION_COLUMN,
    RegionEnum,
    Table,
    TableLocality,
)
from .eval import EvalEnv, columns_referenced, evaluate
from .executor import ExecContext, Executor
from .lexer import tokenize
from .parser import parse, parse_one
from .schema_changes import SchemaChangeEngine
from .session import Engine, Session, TxnHandle, parse_interval_ms

__all__ = [
    "ast",
    "Catalog",
    "Column",
    "Database",
    "DEFAULT_PARTITION",
    "Index",
    "REGION_COLUMN",
    "RegionEnum",
    "Table",
    "TableLocality",
    "EvalEnv",
    "columns_referenced",
    "evaluate",
    "ExecContext",
    "Executor",
    "tokenize",
    "parse",
    "parse_one",
    "SchemaChangeEngine",
    "Engine",
    "Session",
    "TxnHandle",
    "parse_interval_ms",
]
