"""DML execution: INSERT / SELECT / UPDATE / DELETE over table Ranges.

Key encodings:

* primary index:   key = (pk column values...), value = the full row dict;
* secondary index: key = (index column values...), value = the pk tuple.

REGIONAL BY ROW tables store each row (and its index entries) in the
partition named by the row's region column; the planner decides which
partitions a lookup must visit (§4.2) and which uniqueness checks an
INSERT/UPDATE needs (§4.1).  Automatic rehoming (§2.3.2) moves a row
between partitions when an UPDATE from another region fires the
``ON UPDATE rehome_row()`` clause.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..errors import (
    ForeignKeyViolationError,
    SchemaError,
    UniqueViolationError,
)
from ..kv.distsender import ReadRouting
from ..kv.keyspace import encode_key, live_ranges
from ..optimizer.plans import (
    FanoutMultiRead,
    FanoutPointRead,
    FullScan,
    LocalityOptimizedMultiRead,
    LocalityOptimizedRead,
    MultiPointRead,
    PartitionPointRead,
    UniquenessCheck,
)
from . import ast
from .catalog import DEFAULT_PARTITION, Database, Table
from .eval import EvalEnv, evaluate

__all__ = ["Executor", "ExecContext"]


class ExecContext:
    """Per-statement execution context."""

    def __init__(self, database: Database, gateway, env: EvalEnv):
        self.database = database
        self.gateway = gateway
        self.env = env

    @property
    def gateway_region(self) -> str:
        return self.gateway.locality.region

    def planner(self, table: Table):
        # Imported here to break the sql <-> optimizer import cycle.
        from ..optimizer.planner import Planner
        return Planner(table, gateway_region=self.gateway_region,
                       env=self.env)


def _routing_for(table: Table) -> str:
    """GLOBAL tables read from the nearest replica (§6); REGIONAL tables
    read at the leaseholder."""
    return (ReadRouting.NEAREST if table.locality.is_global
            else ReadRouting.LEASEHOLDER)


def plan_on_primary(plan, table: Table) -> bool:
    """Does the plan look rows up directly in the primary index?"""
    index = getattr(plan, "index", None)
    return index is not None and index.is_primary and not \
        isinstance(plan, FullScan)


class Executor:
    """Executes DML statements inside a transaction."""

    def __init__(self, context: ExecContext):
        self.context = context

    # -- INSERT --------------------------------------------------------------------

    def insert(self, txn, stmt: ast.Insert) -> Generator:
        """Insert rows; returns the number of rows written."""
        table = self.context.database.table(stmt.table)
        count = 0
        for value_exprs in stmt.rows:
            row, generated = self._build_row(table, stmt.columns, value_exprs)
            yield from self._insert_row(txn, table, row, generated)
            count += 1
        return count

    def _build_row(self, table: Table, columns: List[str],
                   value_exprs: List[Any]) -> Tuple[Dict[str, Any], frozenset]:
        if len(columns) != len(value_exprs):
            raise SchemaError("INSERT column/value count mismatch")
        env = self.context.env
        provided = {}
        for name, expr in zip(columns, value_exprs):
            table.column(name)  # existence check
            provided[name] = evaluate(expr, {}, env)
        row: Dict[str, Any] = {}
        generated = set()
        for column in table.columns.values():
            if column.computed is not None:
                continue
            if column.name in provided:
                row[column.name] = provided[column.name]
            elif column.default is not None:
                row[column.name] = evaluate(column.default, row, env)
                if isinstance(column.default, ast.FuncCall) and \
                        column.default.name == "gen_random_uuid":
                    generated.add(column.name)
            else:
                row[column.name] = None
        for column in table.columns.values():
            if column.computed is not None:
                row[column.name] = evaluate(column.computed, row, env)
        for column in table.columns.values():
            if column.not_null and row.get(column.name) is None:
                raise SchemaError(
                    f"null value in NOT NULL column {column.name!r}")
        return row, frozenset(generated)

    def _insert_row(self, txn, table: Table, row: Dict[str, Any],
                    generated: frozenset) -> Generator:
        database = self.context.database
        region_col = table.region_column
        if region_col is not None:
            database.region_enum.validate_writable(row[region_col])
        partition = (row[region_col] if region_col is not None
                     else DEFAULT_PARTITION)
        pk = tuple(row[c] for c in table.primary_key)
        primary = table.primary_index
        routing = _routing_for(table)

        # Local duplicate-PK check (read-before-write in the home
        # partition; remote partitions are covered by uniqueness checks).
        existing = yield from txn.read(primary.partition_for(partition), pk,
                                       routing=routing)
        if existing is not None:
            raise UniqueViolationError(table.name, table.primary_key, pk)

        # Write the row and its index entries.
        yield from txn.write(primary.partition_for(partition), pk, row)
        for index in table.unique_indexes():
            key = tuple(row[c] for c in index.key_columns)
            yield from self._cput_index_entry(
                txn, table, index, partition, key, pk, routing)

        # Post-write uniqueness checks (§4.1), self-matches allowed.
        planner = self.context.planner(table)
        checks = planner.plan_uniqueness_checks(
            row, generated_columns=generated, allow_pk=pk)
        yield from self._run_uniqueness_checks(
            txn, table, checks, home_partition=partition, routing=routing)
        # Foreign keys need strongly-consistent parent reads (§2.3.3):
        # cheap when the parent is GLOBAL (served by the local replica),
        # potentially cross-region otherwise — the paper's motivation for
        # GLOBAL dimension tables.
        yield from self._validate_foreign_keys(txn, table, row)
        return None

    def _validate_foreign_keys(self, txn, table: Table,
                               row: Dict[str, Any],
                               changed: Optional[frozenset] = None
                               ) -> Generator:
        database = self.context.database
        # Column-level ``col REFERENCES parent`` (parent pk implied).
        for column in table.columns.values():
            if column.references is None:
                continue
            if changed is not None and column.name not in changed:
                continue
            value = row.get(column.name)
            if value is None:
                continue
            parent = database.table(column.references)
            pairs = [(parent.primary_key[0], value)]
            yield from self._check_parent_exists(
                txn, table, parent, column.name, pairs)
        # Table-level FOREIGN KEY (cols) REFERENCES parent (cols).
        for fk in table.foreign_keys:
            if changed is not None and not (set(fk.columns) & set(changed)):
                continue
            values = [row.get(c) for c in fk.columns]
            if any(v is None for v in values):
                continue
            parent = database.table(fk.parent)
            parent_columns = (fk.parent_columns
                              or parent.primary_key[:len(fk.columns)])
            pairs = list(zip(parent_columns, values))
            yield from self._check_parent_exists(
                txn, table, parent, ",".join(fk.columns), pairs)
        return None

    def _check_parent_exists(self, txn, table: Table, parent: Table,
                             label: str, pairs) -> Generator:
        """One strongly-consistent parent lookup (§2.3.3)."""
        planner = self.context.planner(parent)
        parts = tuple(
            ast.Comparison("=", ast.ColumnRef(col), ast.Literal(value))
            for col, value in pairs)
        where: Any = parts[0] if len(parts) == 1 else \
            ast.LogicalAnd(parts=parts)
        plan = planner.plan_point_query(where)
        parents = yield from self._lookup_rows(txn, parent, plan, where)
        if not parents:
            raise ForeignKeyViolationError(
                table.name, label, tuple(value for _c, value in pairs))
        return None

    def _cascade_to_children(self, txn, table: Table,
                             old_row: Dict[str, Any],
                             new_row: Dict[str, Any],
                             changed: frozenset) -> Generator:
        """ON UPDATE CASCADE (§2.3.2): propagate changed referenced
        columns to child rows — in particular, when the parent's region
        column changes, collocated children move with it."""
        database = self.context.database
        for child in database.tables.values():
            for fk in child.foreign_keys:
                if fk.parent != table.name or not fk.on_update_cascade:
                    continue
                parent_columns = (fk.parent_columns
                                  or table.primary_key[:len(fk.columns)])
                touched = [
                    (child_col, parent_col)
                    for child_col, parent_col in zip(fk.columns,
                                                     parent_columns)
                    if parent_col in changed
                ]
                if not touched:
                    continue
                # Children matching the OLD parent values...
                where = ast.LogicalAnd(parts=tuple(
                    ast.Comparison("=", ast.ColumnRef(child_col),
                                   ast.Literal(old_row[parent_col]))
                    for child_col, parent_col in zip(fk.columns,
                                                     parent_columns)))
                # ...get the NEW values (moving partitions if the child's
                # region column is among them).
                update = ast.Update(
                    table=child.name,
                    assignments=[
                        (child_col, ast.Literal(new_row[parent_col]))
                        for child_col, parent_col in touched
                    ],
                    where=where)
                yield from self.update(txn, update)
        return None

    def _cput_index_entry(self, txn, table: Table, index, partition: str,
                          key, pk, routing) -> Generator:
        """Write a unique-index entry conditionally (CRDB uses CPut):
        an existing entry pointing at a different row is a violation."""
        rng = index.partition_for(partition)
        existing = yield from txn.read(rng, key, routing=routing)
        if existing is not None and tuple(existing) != tuple(pk):
            raise UniqueViolationError(table.name, index.key_columns, key)
        yield from txn.write(rng, key, pk)
        return None

    def _run_uniqueness_checks(self, txn, table: Table,
                               checks: List[UniquenessCheck],
                               home_partition: str,
                               routing: str) -> Generator:
        requests = []
        meta = []
        for check in checks:
            for partition in check.partitions:
                if check.index.is_primary and partition == home_partition:
                    continue  # already verified by the local read
                rng = check.index.partitions.get(partition)
                if rng is None:
                    continue
                requests.append((rng, check.key))
                meta.append((check, partition))
        if not requests:
            return None
        results = yield from txn.read_batch(requests, routing=routing)
        for (check, partition), found in zip(meta, results):
            if found is None:
                continue
            found_pk = found if not check.index.is_primary else \
                tuple(found[c] for c in table.primary_key)
            if check.allow_pk is not None and \
                    tuple(found_pk) == tuple(check.allow_pk) and \
                    partition == home_partition:
                continue
            raise UniqueViolationError(table.name, check.constraint,
                                       check.key)
        return None

    # -- row lookup (shared by SELECT/UPDATE/DELETE) -----------------------------------

    def _lookup_rows(self, txn, table: Table, plan,
                     where: Optional[Any],
                     locking: bool = False) -> Generator:
        """Execute a read plan; returns a list of (row, partition).

        ``locking`` (SELECT FOR UPDATE) turns primary-index point reads
        into locking reads that pin the row in one leaseholder visit.
        """
        routing = _routing_for(table)
        primary = table.primary_index

        def point_read(rng, key):
            if locking and plan.index.is_primary:
                value = yield from txn.locking_read(rng, key)
            else:
                value = yield from txn.read(rng, key, routing=routing)
            return value

        if isinstance(plan, PartitionPointRead):
            rng = plan.index.partitions.get(plan.partition)
            if rng is None:
                return []
            value = yield from point_read(rng, plan.key)
            rows = yield from self._resolve_index_hits(
                txn, table, plan.index, [(value, plan.partition)], routing)
            return rows

        if isinstance(plan, LocalityOptimizedRead):
            local_rng = plan.index.partitions[plan.local_partition]
            value = yield from point_read(local_rng, plan.key)
            if value is not None:
                rows = yield from self._resolve_index_hits(
                    txn, table, plan.index,
                    [(value, plan.local_partition)], routing)
                return rows
            # Local miss: fan out to every remote partition in parallel.
            requests = [(plan.index.partitions[p], plan.key)
                        for p in plan.remote_partitions]
            if not requests:
                return []
            results = yield from txn.read_batch(requests, routing=routing)
            hits = [(value, partition) for value, partition in
                    zip(results, plan.remote_partitions) if value is not None]
            rows = yield from self._resolve_index_hits(
                txn, table, plan.index, hits, routing)
            return rows

        if isinstance(plan, FanoutPointRead):
            requests = [(plan.index.partitions[p], plan.key)
                        for p in plan.partitions]
            results = yield from txn.read_batch(requests, routing=routing)
            hits = [(value, partition) for value, partition in
                    zip(results, plan.partitions) if value is not None]
            rows = yield from self._resolve_index_hits(
                txn, table, plan.index, hits, routing)
            return rows

        if isinstance(plan, MultiPointRead):
            rng = plan.index.partitions.get(plan.partition)
            if rng is None:
                return []
            results = yield from txn.read_batch(
                [(rng, key) for key in plan.keys], routing=routing)
            hits = [(value, plan.partition) for value in results
                    if value is not None]
            rows = yield from self._resolve_index_hits(
                txn, table, plan.index, hits, routing)
            return rows

        if isinstance(plan, LocalityOptimizedMultiRead):
            # Probe every key locally in one batch; fan out only the
            # misses (the §4.2 IN-list generalization of LOS).
            local_rng = plan.index.partitions[plan.local_partition]
            local_results = yield from txn.read_batch(
                [(local_rng, key) for key in plan.keys], routing=routing)
            hits = [(value, plan.local_partition)
                    for value in local_results if value is not None]
            missing = [key for key, value in zip(plan.keys, local_results)
                       if value is None]
            if missing:
                requests = [(plan.index.partitions[p], key)
                            for key in missing
                            for p in plan.remote_partitions]
                remote_results = yield from txn.read_batch(
                    requests, routing=routing)
                for (rng_key, value) in zip(requests, remote_results):
                    if value is not None:
                        _rng, _key = rng_key
                        partition = next(
                            p for p in plan.remote_partitions
                            if plan.index.partitions[p] is _rng)
                        hits.append((value, partition))
            rows = yield from self._resolve_index_hits(
                txn, table, plan.index, hits, routing)
            return rows

        if isinstance(plan, FanoutMultiRead):
            requests = [(plan.index.partitions[p], key)
                        for key in plan.keys for p in plan.partitions]
            results = yield from txn.read_batch(requests, routing=routing)
            hits = []
            for (rng_key, value) in zip(requests, results):
                if value is not None:
                    _rng, _key = rng_key
                    partition = next(p for p in plan.partitions
                                     if plan.index.partitions[p] is _rng)
                    hits.append((value, partition))
            rows = yield from self._resolve_index_hits(
                txn, table, plan.index, hits, routing)
            return rows

        if isinstance(plan, FullScan):
            # Scans enumerate each partition's key set at the leaseholder
            # and then read every key transactionally (so in-flight
            # intents are handled like any other read).  Key enumeration
            # itself is a simulation shortcut standing in for a range
            # scan request; the per-key reads pay real latency.
            requests = []
            request_partitions = []
            for partition in plan.partitions:
                token = primary.partitions[partition]
                # An elastic partition spreads its keys over the span's
                # live ranges; reads still go through the token so the
                # DistSender re-routes if a split races the scan.
                keys = set()
                for rng in live_ranges(token):
                    keys.update(rng.leaseholder_replica.store.keys())
                for key in sorted(keys, key=encode_key):
                    requests.append((token, key))
                    request_partitions.append(partition)
            if not requests:
                return []
            values = yield from txn.read_batch(requests, routing=routing)
            env = self.context.env
            rows = []
            for value, partition in zip(values, request_partitions):
                if value is None:
                    continue
                if where is None or evaluate(where, value, env):
                    rows.append((value, partition))
            return rows

        raise SchemaError(f"unsupported plan {plan!r}")

    def _resolve_index_hits(self, txn, table: Table, index, hits,
                            routing) -> Generator:
        """Map index hits to full rows (secondary indexes store the pk)."""
        rows = []
        primary = table.primary_index
        for value, partition in hits:
            if value is None:
                continue
            if index.is_primary:
                rows.append((value, partition))
            else:
                pk = tuple(value)
                row = yield from txn.read(primary.partitions[partition], pk,
                                          routing=routing)
                if row is not None:
                    rows.append((row, partition))
        return rows

    # -- SELECT -----------------------------------------------------------------------

    def select(self, txn, stmt: ast.Select) -> Generator:
        table = self.context.database.table(stmt.table)
        planner = self.context.planner(table)
        plan = planner.plan_point_query(stmt.where, limit=stmt.limit)
        locking = stmt.for_update and plan_on_primary(plan, table)
        rows = yield from self._lookup_rows(txn, table, plan, stmt.where,
                                            locking=locking)
        env = self.context.env
        out = []
        matched = []
        for row, partition in rows:
            if stmt.where is not None and not evaluate(stmt.where, row, env):
                continue
            matched.append((row, partition))
            out.append(self._project(table, row, stmt.columns))
            if stmt.limit is not None and len(out) >= stmt.limit:
                break
        if stmt.for_update and not locking:
            # Lookup went through a secondary index or a scan: lock the
            # matched primary rows after the fact (may pay a refresh if
            # another writer slipped in between, exactly like CRDB's
            # non-primary FOR UPDATE plans).
            primary = table.primary_index
            for row, partition in matched:
                pk = tuple(row[c] for c in table.primary_key)
                yield from txn.locking_read(primary.partitions[partition],
                                            pk)
        return out

    def _project(self, table: Table, row: Dict[str, Any],
                 columns: List[str]) -> Dict[str, Any]:
        if columns == ["*"]:
            names = table.visible_columns()
        else:
            names = columns
        return {name: row.get(name) for name in names}

    # -- UPDATE ------------------------------------------------------------------------

    def update(self, txn, stmt: ast.Update) -> Generator:
        table = self.context.database.table(stmt.table)
        planner = self.context.planner(table)
        plan = planner.plan_point_query(stmt.where)
        rows = yield from self._lookup_rows(txn, table, plan, stmt.where)
        env = self.context.env
        count = 0
        for row, partition in rows:
            if stmt.where is not None and not evaluate(stmt.where, row, env):
                continue
            yield from self._update_row(txn, table, row, partition, stmt)
            count += 1
        return count

    def _update_row(self, txn, table: Table, row: Dict[str, Any],
                    partition: str, stmt: ast.Update) -> Generator:
        env = self.context.env
        database = self.context.database
        new_row = dict(row)
        assigned = set()
        for name, expr in stmt.assignments:
            table.column(name)
            new_row[name] = evaluate(expr, row, env)
            assigned.add(name)
        # ON UPDATE clauses fire for columns not explicitly assigned
        # (this is how automatic rehoming triggers, §2.3.2).
        for column in table.columns.values():
            if column.on_update is not None and column.name not in assigned:
                new_row[column.name] = evaluate(column.on_update, new_row, env)
        # Recompute computed columns.
        for column in table.columns.values():
            if column.computed is not None:
                new_row[column.name] = evaluate(column.computed, new_row, env)

        changed = frozenset(name for name in new_row
                            if new_row.get(name) != row.get(name))
        if not changed:
            return None
        region_col = table.region_column
        new_partition = partition
        if region_col is not None:
            database.region_enum.validate_writable(new_row[region_col])
            new_partition = new_row[region_col]

        old_pk = tuple(row[c] for c in table.primary_key)
        new_pk = tuple(new_row[c] for c in table.primary_key)
        primary = table.primary_index
        routing = _routing_for(table)

        if new_partition != partition or new_pk != old_pk:
            # The row moves (rehoming or pk change): delete + reinsert.
            yield from txn.delete(primary.partitions[partition], old_pk)
            for index in table.unique_indexes():
                old_key = tuple(row[c] for c in index.key_columns)
                yield from txn.delete(index.partitions[partition], old_key)
            existing = yield from txn.read(
                primary.partitions[new_partition], new_pk, routing=routing)
            if existing is not None:
                raise UniqueViolationError(table.name, table.primary_key,
                                           new_pk)
            yield from txn.write(primary.partitions[new_partition], new_pk,
                                 new_row)
            for index in table.unique_indexes():
                new_key = tuple(new_row[c] for c in index.key_columns)
                yield from self._cput_index_entry(
                    txn, table, index, new_partition, new_key, new_pk,
                    routing)
            check_changed = None  # full re-check in the new partition
        else:
            yield from txn.write(primary.partitions[partition], new_pk,
                                 new_row)
            for index in table.unique_indexes():
                old_key = tuple(row[c] for c in index.key_columns)
                new_key = tuple(new_row[c] for c in index.key_columns)
                if old_key != new_key:
                    yield from txn.delete(index.partitions[partition],
                                          old_key)
                    yield from self._cput_index_entry(
                        txn, table, index, partition, new_key, new_pk,
                        routing)
            check_changed = changed

        planner = self.context.planner(table)
        checks = planner.plan_uniqueness_checks(
            new_row, allow_pk=new_pk, changed_columns=check_changed)
        yield from self._run_uniqueness_checks(
            txn, table, checks, home_partition=new_partition,
            routing=routing)
        yield from self._validate_foreign_keys(txn, table, new_row,
                                               changed=changed)
        yield from self._cascade_to_children(txn, table, row, new_row,
                                             changed)
        return None

    # -- DELETE -------------------------------------------------------------------------

    def delete(self, txn, stmt: ast.Delete) -> Generator:
        table = self.context.database.table(stmt.table)
        planner = self.context.planner(table)
        plan = planner.plan_point_query(stmt.where)
        rows = yield from self._lookup_rows(txn, table, plan, stmt.where)
        env = self.context.env
        count = 0
        for row, partition in rows:
            if stmt.where is not None and not evaluate(stmt.where, row, env):
                continue
            pk = tuple(row[c] for c in table.primary_key)
            yield from txn.delete(table.primary_index.partitions[partition],
                                  pk)
            for index in table.unique_indexes():
                key = tuple(row[c] for c in index.key_columns)
                yield from txn.delete(index.partitions[partition], key)
            count += 1
        return count
