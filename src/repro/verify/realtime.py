"""Real-time (recency) and staleness-bound checks.

The paper's non-serializable guarantees, checked against the recorded
history:

* **strong-read recency** (commit-wait correctness): a committed strong
  transaction beginning at time ``B`` must observe, for every key it
  reads, at least the newest version whose write was *acknowledged*
  strictly before ``B``.  This is exactly what GLOBAL tables' commit
  wait buys — a present-time read served from any replica can never
  miss an acked write — and leaseholder reads owe the same per-key
  linearizability via the uncertainty interval;
* **exact staleness** (§5.3.1): an ``AS OF SYSTEM TIME ts`` read never
  observes a version newer than ``ts``, and observes every write that
  both committed at or below ``ts`` and was acked before the statement
  began;
* **bounded staleness** (§5.3.2): the served timestamp never falls
  below the negotiated minimum bound, reads never observe data newer
  than the served timestamp, and the served snapshot is complete up to
  it;
* **per-session monotonic reads**: within one session (label), reads of
  a key never move backwards in version-timestamp order across strong
  transactions.

Comparisons use the writers' commit timestamps as recorded — committed
MVCC versions carry their transaction's commit timestamp, so observed
``version_ts`` and writer ``commit_ts`` live on one axis.

Pure functions of the history; anomalies append onto the shared
:class:`~repro.verify.checker.VerifyReport`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from .checker import Anomaly, VerifyReport
from .history import COMMITTED, VerifyHistory

__all__ = ["check_realtime"]


def _newest_acked(entries: List[Tuple[float, Any]], when_ms: float,
                  at_or_below=None) -> Optional[Any]:
    """Max commit_ts among writes acked strictly before ``when_ms``
    (optionally restricted to ``commit_ts <= at_or_below``)."""
    best = None
    for end_ms, commit_ts in entries:
        if end_ms >= when_ms:
            continue
        if at_or_below is not None and commit_ts > at_or_below:
            continue
        if best is None or commit_ts > best:
            best = commit_ts
    return best


def check_realtime(history: VerifyHistory, report: VerifyReport,
                   acked_writes: Dict[str, List[Tuple[float, Any]]]) -> None:
    committed = [t for t in history.txns if t.status == COMMITTED]

    # -- strong-read recency -------------------------------------------------
    for txn in committed:
        if txn.mode != "strong":
            continue
        for op in txn.reads():
            if op.from_intent or op.version_ts is None:
                continue
            newest = _newest_acked(acked_writes.get(op.key, []),
                                   txn.begin_ms)
            if newest is not None and op.version_ts < newest:
                report.anomalies.append(Anomaly(
                    type="stale-strong-read", key=op.key,
                    description=(
                        f"txn {txn.txn_id} ({txn.label}) began at "
                        f"{txn.begin_ms:.3f}ms but read version "
                        f"{op.version_ts}, older than a write acked "
                        f"before it began (commit_ts {newest})"),
                    witness={"reader": txn.txn_id,
                             "begin_ms": txn.begin_ms,
                             "observed_ts": str(op.version_ts),
                             "newest_acked_ts": str(newest)}))

    # -- staleness bounds ----------------------------------------------------
    for txn in committed:
        if txn.mode not in ("exact", "bounded"):
            continue
        limit = txn.requested_ts if txn.mode == "exact" \
            else txn.effective_ts
        if txn.mode == "bounded":
            if txn.requested_ts is not None and \
                    txn.effective_ts is not None and \
                    txn.effective_ts < txn.requested_ts:
                report.anomalies.append(Anomaly(
                    type="staleness-bound-violated",
                    description=(
                        f"stale txn {txn.txn_id} ({txn.label}) was served "
                        f"at {txn.effective_ts}, below its minimum bound "
                        f"{txn.requested_ts}"),
                    witness={"txn": txn.txn_id,
                             "served_ts": str(txn.effective_ts),
                             "min_ts": str(txn.requested_ts)}))
        for op in txn.reads():
            if op.version_ts is None:
                continue
            if limit is not None and op.version_ts > limit:
                report.anomalies.append(Anomaly(
                    type="stale-read-too-new", key=op.key,
                    description=(
                        f"stale txn {txn.txn_id} ({txn.label}, "
                        f"{txn.mode}) observed version {op.version_ts} "
                        f"newer than its read timestamp {limit}"),
                    witness={"txn": txn.txn_id,
                             "observed_ts": str(op.version_ts),
                             "limit_ts": str(limit)}))
            if limit is not None:
                newest = _newest_acked(acked_writes.get(op.key, []),
                                       txn.begin_ms, at_or_below=limit)
                if newest is not None and op.version_ts < newest:
                    report.anomalies.append(Anomaly(
                        type="staleness-missed-write", key=op.key,
                        description=(
                            f"stale txn {txn.txn_id} ({txn.label}) read "
                            f"at {limit} but missed a write with "
                            f"commit_ts {newest} <= that timestamp, "
                            "acked before the statement began"),
                        witness={"txn": txn.txn_id,
                                 "observed_ts": str(op.version_ts),
                                 "missed_commit_ts": str(newest)}))

    # -- per-session monotonic reads ----------------------------------------
    sessions: Dict[str, List] = {}
    for txn in committed:
        if txn.mode == "strong":
            sessions.setdefault(txn.label, []).append(txn)
    for label, txns in sorted(sessions.items()):
        txns.sort(key=lambda t: (t.begin_ms, t.txn_id))
        high_water: Dict[str, Any] = {}
        for txn in txns:
            for op in txn.reads():
                if op.from_intent or op.version_ts is None:
                    continue
                seen = high_water.get(op.key)
                if seen is not None and op.version_ts < seen:
                    report.anomalies.append(Anomaly(
                        type="non-monotonic-session", key=op.key,
                        description=(
                            f"session {label!r} txn {txn.txn_id} read "
                            f"version {op.version_ts} after previously "
                            f"observing {seen}"),
                        witness={"session": label, "txn": txn.txn_id,
                                 "observed_ts": str(op.version_ts),
                                 "previous_ts": str(seen)}))
                elif seen is None or op.version_ts > seen:
                    high_water[op.key] = op.version_ts
            if txn.commit_ts is not None:
                for op in txn.writes():
                    seen = high_water.get(op.key)
                    if seen is None or txn.commit_ts > seen:
                        high_water[op.key] = txn.commit_ts

    report.checks_run.extend([
        "real-time: strong reads observe every write acked before they "
        "began (commit-wait / GLOBAL recency)",
        "staleness: exact/bounded reads never observe data newer than "
        "their timestamp, never miss covered acked writes, and bounded "
        "negotiation respects the minimum bound",
        "sessions: per-session monotonic reads",
    ])
