"""Structured transactional histories for Elle-style checking.

A :class:`VerifyHistory` is everything the checkers need, and nothing
they are allowed to peek beyond: per-transaction operation lists with
observed MVCC version timestamps, begin/acknowledge times in simulated
milliseconds, commit timestamps, staleness modes and negotiated
timestamps, plus the final strong-read state of every key.

Histories round-trip through JSON exactly (timestamps are encoded as
``[physical, logical, synthetic]`` triples and floats survive via
shortest-repr), so a violation found in CI can be dumped to a file and
re-checked offline byte-for-byte — the checkers themselves are pure
functions of the history.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..sim.clock import Timestamp

__all__ = [
    "COMMITTED", "ABORTED", "INDETERMINATE",
    "RecordedOp", "RecordedTxn", "VerifyHistory",
    "ts_to_json", "ts_from_json",
]

COMMITTED = "committed"
ABORTED = "aborted"
INDETERMINATE = "indeterminate"


def ts_to_json(ts: Optional[Timestamp]) -> Optional[List[Any]]:
    """``Timestamp`` -> JSON triple (or None)."""
    if ts is None:
        return None
    return [ts.physical, ts.logical, ts.synthetic]


def ts_from_json(value: Optional[List[Any]]) -> Optional[Timestamp]:
    if value is None:
        return None
    return Timestamp(float(value[0]), int(value[1]), bool(value[2]))


@dataclass
class RecordedOp:
    """One operation inside a recorded transaction.

    Kinds: ``"r"`` read, ``"w"`` write, ``"v"`` a failed epoch-OCC
    validation (first-class in the history so differential runs can see
    *why* an optimistic transaction aborted; the serializability and
    real-time checkers ignore it).
    """

    kind: str  # "r" | "w" | "v"
    key: str   # "<range>/<key>"
    value: Any
    #: Reads: the MVCC timestamp of the observed version (TS_ZERO-like
    #: for absent keys, None when unknown, e.g. locking reads).
    #: Writes: the timestamp the intent was laid at.
    version_ts: Optional[Timestamp]
    at_ms: float
    #: Reads only: the value came from this transaction's own intent.
    from_intent: bool = False

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "key": self.key,
            "value": self.value,
            "version_ts": ts_to_json(self.version_ts),
            "at_ms": self.at_ms,
            "from_intent": self.from_intent,
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RecordedOp":
        return cls(kind=data["kind"], key=data["key"], value=data["value"],
                   version_ts=ts_from_json(data["version_ts"]),
                   at_ms=float(data["at_ms"]),
                   from_intent=bool(data.get("from_intent", False)))


@dataclass
class RecordedTxn:
    """One client transaction (or one stale-read statement)."""

    txn_id: int
    label: str    # client / session name
    region: str   # gateway region
    mode: str     # "strong" | "exact" | "bounded"
    status: str   # committed | aborted | indeterminate
    begin_ms: float
    end_ms: Optional[float] = None
    commit_ts: Optional[Timestamp] = None
    #: Stale reads: the requested AS OF timestamp (exact) or the
    #: ``min_timestamp`` bound (bounded).
    requested_ts: Optional[Timestamp] = None
    #: Stale reads: the timestamp actually served (negotiated/servable).
    effective_ts: Optional[Timestamp] = None
    #: Aborted transactions: why — "retry" (retryable conflict, the
    #: coordinator resubmits), "validation" (epoch-OCC read-set
    #: validation failure, also retryable) or "fatal" (client error /
    #: non-retryable).  None for non-aborted transactions.
    abort_kind: Optional[str] = None
    ops: List[RecordedOp] = field(default_factory=list)

    def reads(self) -> List[RecordedOp]:
        return [op for op in self.ops if op.kind == "r"]

    def writes(self) -> List[RecordedOp]:
        return [op for op in self.ops if op.kind == "w"]

    def to_json(self) -> Dict[str, Any]:
        return {
            "txn_id": self.txn_id,
            "label": self.label,
            "region": self.region,
            "mode": self.mode,
            "status": self.status,
            "begin_ms": self.begin_ms,
            "end_ms": self.end_ms,
            "commit_ts": ts_to_json(self.commit_ts),
            "requested_ts": ts_to_json(self.requested_ts),
            "effective_ts": ts_to_json(self.effective_ts),
            "abort_kind": self.abort_kind,
            "ops": [op.to_json() for op in self.ops],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "RecordedTxn":
        return cls(
            txn_id=int(data["txn_id"]), label=data["label"],
            region=data["region"], mode=data["mode"], status=data["status"],
            begin_ms=float(data["begin_ms"]),
            end_ms=(None if data["end_ms"] is None
                    else float(data["end_ms"])),
            commit_ts=ts_from_json(data["commit_ts"]),
            requested_ts=ts_from_json(data["requested_ts"]),
            effective_ts=ts_from_json(data["effective_ts"]),
            abort_kind=data.get("abort_kind"),
            ops=[RecordedOp.from_json(op) for op in data["ops"]])


@dataclass
class VerifyHistory:
    """A complete recorded run, ready for the pure checkers.

    ``meta`` carries the workload shape the checkers need:

    * ``meta["keys"]`` maps each full key to ``{"kind": "list" |
      "register", "global": bool}``;
    * ``meta["scenario"]`` / ``meta["seed"]`` identify the run.

    ``final`` maps each key to the value agreed by the end-of-run strong
    audit reads.
    """

    txns: List[RecordedTxn] = field(default_factory=list)
    meta: Dict[str, Any] = field(default_factory=dict)
    final: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {
            "meta": self.meta,
            "final": self.final,
            "txns": [txn.to_json() for txn in self.txns],
        }

    @classmethod
    def from_json(cls, data: Dict[str, Any]) -> "VerifyHistory":
        return cls(txns=[RecordedTxn.from_json(t) for t in data["txns"]],
                   meta=dict(data["meta"]), final=dict(data["final"]))

    def dumps(self) -> str:
        """Canonical JSON text (stable key order, round-trips exactly)."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    @classmethod
    def loads(cls, text: str) -> "VerifyHistory":
        return cls.from_json(json.loads(text))

    def dump(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.dumps() + "\n")

    @classmethod
    def load(cls, path: str) -> "VerifyHistory":
        with open(path) as handle:
            return cls.loads(handle.read())
