"""Seeded random transaction generator + verification harness.

One :class:`VerifyHarness` run drives a mixed list-append / register
workload — multi-key serializable transactions with Zipf-skewed key
choice (via :mod:`repro.workloads.zipf`) plus exact- and
bounded-staleness readers — over three tables covering every locality
the paper describes:

* ``reg-us``  — REGIONAL, homed in the primary region;
* ``reg-eu``  — REGIONAL, homed elsewhere (the REGIONAL BY ROW shape:
  some rows' leaseholders are always remote for some clients);
* ``glob``    — GLOBAL (future-time closed timestamps + commit wait).

The run can execute under any of the chaos nemesis schedules (the same
fault builders the chaos scenarios use — ``repro.chaos.build_faults``),
records everything through :class:`~repro.verify.recorder
.HistoryRecorder`, ends with a cross-region strong audit, and hands the
frozen history to the pure checkers.  Everything is deterministic from
``(scenario, seed)``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..admission import AdmissionConfig, install_admission
from ..chaos.nemesis import FaultEvent, Nemesis
from ..chaos.scenarios import HOME, REGIONS, RETRYABLE, build_faults
from ..cluster import StoreLiveness, install_clock_monitor, standard_cluster
from ..placement import ReplicateQueue
from ..errors import (AmbiguousCommitError, DeadlineExceededError,
                      OverloadError, StaleReadBoundError)
from ..kv.distsender import ReadRouting
from ..placement import SurvivalGoal, provision_range, zone_config_for_home
from ..sim.clock import Timestamp
from ..txn import TransactionCoordinator
from ..workloads.zipf import ZipfGenerator
from .checker import VerifyReport, check
from .history import VerifyHistory
from .recorder import HistoryRecorder

__all__ = ["VerifyHarness", "VerifyResult", "run_verify",
           "VERIFY_SCENARIOS", "OCC_SWEEP_SCENARIOS",
           "OCC_ABLATION_SCENARIO"]

#: The chaos schedules the randomized isolation sweep runs under (the
#: two *-repair scenarios permanently lose nodes and have their own
#: tier-2 sweep; the verifier targets the heal-everything schedules).
#: ``overload`` is not a fault schedule but a load nemesis: admission
#: control is installed and an open-loop background load saturates the
#: home store while the recorded clients run with deadlines, proving
#: that shedding never breaks serializability.
VERIFY_SCENARIOS = [
    "region-blackout", "rolling-zones", "flaky-wan",
    "gray-follower", "asym-partition", "crash-restart",
    "split-merge",
    "overload",
    "clock-drift", "clock-jump", "clock-jump-nofence",
]

#: Clock-fault verify scenarios.  ``clock-drift`` keeps every clock
#: inside the max-offset contract (nothing may fence, nothing may break);
#: ``clock-jump`` steps a writer gateway's clock beyond the contract
#: with the full defense on (serve-side rejection + self-fencing) and
#: must stay anomaly-free; ``clock-jump-nofence`` is the honest
#: ablation — the identical schedule with the defense disabled, where
#: the run *passes* iff the checker reports the real-time/staleness
#: anomalies the undefended jump really causes.
CLOCK_SCENARIOS = ("clock-drift", "clock-jump", "clock-jump-nofence")

#: The differential sweep the epoch-OCC backend must pass: the six
#: heal-everything fault schedules, identical nemesis timelines to the
#: CRDB-protocol sweep (``pytest -m verify_occ`` runs these x 5 seeds
#: under ``protocol="epoch-occ"``).
OCC_SWEEP_SCENARIOS = [
    "region-blackout", "rolling-zones", "flaky-wan",
    "gray-follower", "asym-partition", "crash-restart",
]

#: The epoch-OCC honest-falsification ablation: the identical optimistic
#: pipeline with commit-time read-set validation disabled.  The run
#: *passes* iff the checker convicts the blind write-write races the
#: missing validation really causes (lost updates / write cycles) —
#: proof the differential sweep's clean verdicts are earned by the
#: validation step, not by checker blindness.
OCC_ABLATION_SCENARIO = "occ-novalidate"

#: Anomaly types the validation-off ablation must produce (at least
#: one): the write-write races validation exists to prevent.
OCC_ABLATION_REQUIRED_TYPES = frozenset({
    "lost-update", "lost-write", "incompatible-order",
    "G0", "G1c", "G-single", "G2",
})

#: How far beyond the 250 ms contract the jump scenarios step a clock.
#: Sized so the stale window survives transaction latency: an acked
#: future-time write is invisible to honest readers for roughly
#: ``jump - txn_duration - max_clock_offset`` — WAN commits eat ~600 ms
#: and uncertainty covers another 250 ms, so 2 s leaves a window the
#: probes cannot miss.
CLOCK_JUMP_MS = 2000.0

#: The anomaly types an undefended beyond-bound clock can legitimately
#: produce: recency (real-time) and staleness violations.  Anything
#: outside this set — a serializability break — fails even the
#: fencing-disabled ablation.
REALTIME_ANOMALY_TYPES = frozenset({
    "stale-strong-read", "stale-read-too-new", "staleness-missed-write",
    "non-monotonic-session", "staleness-bound-violated",
})

#: Overload verify-scenario knobs: background Poisson arrivals per
#: region against the home range, the gateway rate each region's "bg"
#: tenant is admitted at, and the deadlines that trigger shedding.
#: The home store models 1000 ops/s (2 slots x 2ms), so three regions
#: at 500/s offer 1.5x capacity.
OVERLOAD_BG_RATE_PER_S = 500.0
OVERLOAD_BG_ADMIT_RATE_PER_S = 400.0
OVERLOAD_BG_DEADLINE_MS = 300.0
OVERLOAD_TXN_DEADLINE_MS = 1500.0
OVERLOAD_WINDOW_MS = 5000.0

#: REGIONAL tables close timestamps this far behind present time; kept
#: well under the run length so stale readers exercise follower serving
#: rather than always falling back to leaseholders.
CLOSED_TS_LAG_MS = 400.0

STALE_RETRYABLE = RETRYABLE + (StaleReadBoundError,)


@dataclass
class VerifyResult:
    """A verification run: the recorded history plus its verdict."""

    scenario: str
    seed: int
    history: VerifyHistory
    report: VerifyReport
    duration_ms: float
    stats: Dict[str, Any] = field(default_factory=dict)
    #: Defense-disabled ablation runs invert the verdict: the run
    #: passes iff the checker caught at least one anomaly of the kinds
    #: the missing defense really permits (and nothing worse) — proof
    #: the nemesis draws blood when the defense is off.
    expect_anomalies: bool = False
    #: Ablations only: every reported anomaly must fall in this set.
    allowed_anomaly_types: frozenset = REALTIME_ANOMALY_TYPES
    #: Ablations only: at least one anomaly must fall in this set
    #: (None: any non-empty allowed subset passes).
    required_anomaly_types: Optional[frozenset] = None

    @property
    def ok(self) -> bool:
        if not self.expect_anomalies:
            return self.report.ok
        types = {a.type for a in self.report.anomalies}
        if not types or not types <= self.allowed_anomaly_types:
            return False
        if self.required_anomaly_types is not None:
            return bool(types & self.required_anomaly_types)
        return True

    def to_json(self) -> Dict[str, Any]:
        return {
            "scenario": self.scenario,
            "seed": self.seed,
            "ok": self.ok,
            "expect_anomalies": self.expect_anomalies,
            "duration_ms": round(self.duration_ms, 1),
            "stats": dict(self.stats),
            "report": self.report.to_json(),
        }

    def render(self) -> str:
        lines = [
            f"verify scenario {self.scenario!r} (seed={self.seed}) — "
            f"{self.stats.get('txns_recorded', 0)} txns in "
            f"{self.duration_ms:.0f}ms sim",
            "  stats: " + ", ".join(
                f"{key}={value}"
                for key, value in sorted(self.stats.items())),
            self.report.render(),
        ]
        if self.expect_anomalies:
            lines.append(
                "  ablation verdict: " +
                ("OK — the checker convicted the disabled defense"
                 if self.ok else
                 "FAIL — the expected anomalies were not detected "
                 "(or disallowed ones appeared)"))
        return "\n".join(lines)


class VerifyHarness:
    """Cluster + three localized ranges + recorder + seeded clients."""

    def __init__(self, seed: int, regions: Optional[List[str]] = None,
                 home: str = HOME, protocol=None):
        self.seed = seed
        self.regions = list(regions or REGIONS)
        self.home = home
        self.cluster = standard_cluster(self.regions, seed=seed)
        self.coord = TransactionCoordinator(self.cluster, protocol=protocol)
        #: The resolved backend instance — shared with the background
        #: coordinator so a differential run is pure (one protocol end
        #: to end).
        self.protocol = self.coord.protocol
        self.ds = self.coord.distsender
        self.recorder = HistoryRecorder(self.cluster.sim)
        self.coord.recorder = self.recorder
        self.recorder.meta["protocol"] = self.protocol.name
        secondary = next(r for r in self.regions if r != home)
        #: Zone config per range name (the clock-jump scenario's repair
        #: queue needs them to manage the ranges).
        self.configs: Dict[str, Any] = {}

        def make_range(name: str, range_home: str,
                       global_reads: bool = False):
            config = zone_config_for_home(
                range_home, self.cluster.regions(), SurvivalGoal.REGION)
            self.configs[name] = config
            return provision_range(
                self.cluster, config, global_reads=global_reads, name=name,
                side_transport_interval_ms=100.0,
                closed_ts_lag_ms=None if global_reads else CLOSED_TS_LAG_MS,
                proposal_timeout_ms=1000.0,
                retransmit_interval_ms=150.0)

        self.ranges = {
            "reg-us": make_range("reg-us", home),
            "reg-eu": make_range("reg-eu", secondary),
            "glob": make_range("glob", home, global_reads=True),
        }
        #: The range nemesis fault builders target (leaseholder /
        #: follower victims): the primary REGIONAL range.
        self.range = self.ranges["reg-us"]
        #: (range, key, kind) for every workload key: two list-append
        #: and two register keys per table.
        self.keys: List[Tuple[Any, str, str]] = []
        for name in sorted(self.ranges):
            rng = self.ranges[name]
            for key in ("l0", "l1"):
                self.keys.append((rng, key, "list"))
            for key in ("r0", "r1"):
                self.keys.append((rng, key, "register"))
        self.recorder.meta["keys"] = {
            f"{rng.name}/{key}": {"kind": kind,
                                  "global": rng.name == "glob"}
            for rng, key, kind in self.keys}
        self.rng = random.Random((seed << 5) ^ 0x5EED)
        self._strong_routing = ReadRouting.LEASEHOLDER
        #: Set by the ``overload`` scenario: per-txn deadline for the
        #: recorded clients (None = no deadline) and foreground-shed
        #: accounting.
        self.txn_deadline_ms: Optional[float] = None
        self._fg_shed = 0
        self.admission = None
        self._bg_coord: Optional[TransactionCoordinator] = None
        self._bg_stats = {"offered": 0, "rejected": 0, "shed": 0,
                          "failed": 0, "completed": 0}
        #: Clock-scenario machinery (None unless a clock scenario runs).
        self.clock_monitor = None
        self.liveness: Optional[StoreLiveness] = None
        self.repair_queue: Optional[ReplicateQueue] = None
        #: Set by the ``split-merge`` scenario: the elastic span the
        #: primary REGIONAL range was adopted into.
        self.span = None

    @property
    def sim(self):
        return self.cluster.sim

    # -- strong transactional clients ---------------------------------------

    def txn_client(self, label: str, region: str, gateway_index: int,
                   ops: int, think_ms=(10.0, 40.0)):
        """Mixed multi-key transactions: list appends, register
        reads/writes/RMWs, Zipf-skewed key choice."""
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        zipf = ZipfGenerator(len(self.keys), theta=0.9,
                             seed=rng.randrange(1 << 30))
        sequence = [0]
        for _ in range(ops):
            picks = sorted({zipf.next()
                            for _ in range(rng.randint(1, 3))})
            plan = []
            for index in picks:
                table, key, kind = self.keys[index]
                if kind == "list":
                    action = "append"
                else:
                    action = rng.choice(["read", "write", "rmw"])
                plan.append((table, key, kind, action))

            def txn_fn(txn, plan=plan):
                for table, key, _kind, action in plan:
                    if action == "read":
                        yield from txn.read(table, key,
                                            routing=self._strong_routing)
                        continue
                    sequence[0] += 1
                    value = f"{label}:{sequence[0]}"
                    if action == "append":
                        current = yield from txn.read(
                            table, key, routing=self._strong_routing)
                        current = list(current or [])
                        yield from txn.write(table, key, current + [value])
                    elif action == "rmw":
                        yield from txn.read(table, key,
                                            routing=self._strong_routing)
                        yield from txn.write(table, key, value)
                    else:  # blind write
                        yield from txn.write(table, key, value)

            deadline = (self.sim.now + self.txn_deadline_ms
                        if self.txn_deadline_ms is not None else None)
            try:
                yield from self.coord.run(gateway, txn_fn, max_attempts=6,
                                          label=label, deadline_ms=deadline,
                                          tenant=label)
            except AmbiguousCommitError:
                pass  # recorded as indeterminate
            except (DeadlineExceededError, OverloadError):
                # Shed under overload: the attempt rolled back, so the
                # history records it as aborted — serializability must
                # hold regardless.
                self._fg_shed += 1
            except RETRYABLE:
                pass  # recorded as aborted attempts
            yield self.sim.sleep(rng.uniform(*think_ms))

    # -- recency probes (clock scenarios) -----------------------------------

    def probe_client(self, label: str, region: str, gateway_index: int,
                     ops: int, think_ms=(25.0, 50.0)):
        """High-frequency single-key strong reads from one gateway.

        Clock scenarios run these alongside the regular clients: a
        beyond-bound clock opens only a narrow window (roughly the
        effective clock error minus ``max_clock_offset``) in which an
        acked future-time write is invisible to honest readers, and the
        regular Zipf workload samples each key too sparsely to hit it
        reliably.  The probes read the hottest register keys every few
        tens of milliseconds, so any recency violation the nemesis
        causes lands in the history as a committed strong read the
        real-time checker can convict.
        """
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        targets = [(self.ranges[name], key)
                   for name in ("glob", "reg-us") for key in ("r0", "r1")]
        for _ in range(ops):
            table, key = targets[rng.randrange(len(targets))]

            def txn_fn(txn, table=table, key=key):
                yield from txn.read(table, key,
                                    routing=self._strong_routing)

            try:
                yield from self.coord.run(gateway, txn_fn, max_attempts=6,
                                          label=label)
            except AmbiguousCommitError:
                pass
            except RETRYABLE:
                pass
            yield self.sim.sleep(rng.uniform(*think_ms))

    # -- stale readers ------------------------------------------------------

    def stale_client(self, label: str, region: str, gateway_index: int,
                     ops: int, think_ms=(20.0, 60.0)):
        """Exact- and bounded-staleness single-key reads (§5.3)."""
        gateway = self.cluster.gateway_for_region(region, gateway_index)
        rng = random.Random(self.rng.random())
        recorder = self.recorder
        for _ in range(ops):
            table, key, _kind = self.keys[rng.randrange(len(self.keys))]
            now = gateway.clock.now()
            if rng.random() < 0.5:
                ts = Timestamp(now.physical - rng.uniform(500.0, 900.0))
                record = recorder.begin_stale(gateway, "exact", ts,
                                              label=label)
                try:
                    result = yield self.ds.exact_staleness_read(
                        gateway, table, key, ts)
                except STALE_RETRYABLE:
                    recorder.finish_stale(record, ok=False)
                else:
                    recorder.on_stale_read(record, table, key, result)
                    recorder.finish_stale(record)
            else:
                min_ts = Timestamp(
                    now.physical - rng.uniform(700.0, 1200.0))
                record = recorder.begin_stale(gateway, "bounded", min_ts,
                                              label=label)
                try:
                    result, served_ts = yield self.ds.bounded_staleness_read(
                        gateway, table, key, min_ts)
                except STALE_RETRYABLE:
                    recorder.finish_stale(record, ok=False)
                else:
                    recorder.on_stale_read(record, table, key, result,
                                           effective_ts=served_ts)
                    recorder.finish_stale(record)
            yield self.sim.sleep(rng.uniform(*think_ms))

    # -- overload (load nemesis) --------------------------------------------

    def _setup_overload(self) -> None:
        """Install admission control and give the recorded clients
        deadlines; the store work queues now gate every command."""
        self.admission = install_admission(self.cluster, AdmissionConfig(
            rate_per_s=OVERLOAD_BG_ADMIT_RATE_PER_S,
            burst=16.0, max_queue_depth=64,
            store_slots=2, store_service_ms=2.0))
        self.txn_deadline_ms = OVERLOAD_TXN_DEADLINE_MS
        # Unrecorded coordinator for the background load: its txns must
        # not enter the verified history (they touch only bg* keys) but
        # must share the cluster txn registry, so ids are kept disjoint.
        self._bg_coord = TransactionCoordinator(self.cluster,
                                                txn_id_base=1_000_000,
                                                protocol=self.protocol)

    def _bg_request(self, region: str, index: int, rng: random.Random):
        """One open-loop background request: gateway admission, then a
        single bg-key read or write on the home range with a tight
        deadline.  Outcomes only feed the run stats."""
        stats = self._bg_stats
        stats["offered"] += 1
        gateway = self.cluster.gateway_for_region(region, index % 2)
        deadline = self.sim.now + OVERLOAD_BG_DEADLINE_MS
        try:
            yield from self.admission.admit_co("bg", region,
                                               deadline_ms=deadline)
        except OverloadError:
            stats["rejected"] += 1
            return
        except DeadlineExceededError:
            stats["shed"] += 1
            return
        table = self.ranges["reg-us"]
        key = f"bg{rng.randrange(32)}"
        is_write = rng.random() < 0.5
        value = f"bg:{region}:{stats['offered']}"

        def txn_fn(txn):
            if is_write:
                yield from txn.write(table, key, value)
            else:
                yield from txn.read(table, key)

        try:
            yield from self._bg_coord.run(gateway, txn_fn, max_attempts=4,
                                          label="bg", deadline_ms=deadline,
                                          tenant="bg")
        except (DeadlineExceededError, OverloadError):
            stats["shed"] += 1
            return
        except (AmbiguousCommitError,) + RETRYABLE:
            stats["failed"] += 1
            return
        stats["completed"] += 1

    def _bg_arrivals(self, region: str, index: int, end_ms: float):
        """Poisson arrival process for one region's background load."""
        rng = random.Random((self.seed << 7) ^ (0x0AD0 + index))
        count = 0
        while True:
            gap_ms = rng.expovariate(OVERLOAD_BG_RATE_PER_S) * 1000.0
            yield self.sim.sleep(gap_ms)
            if self.sim.now >= end_ms:
                return
            self.sim.spawn(self._bg_request(region, count, rng),
                           name=f"bg-{region}-{count}")
            count += 1

    # -- split/merge (elastic keyspace nemesis) -----------------------------

    def _setup_split_merge(self) -> None:
        """Adopt the primary REGIONAL range into an elastic span so the
        forced split/merge driver can reshape it mid-run.  The recorded
        clients and the stale readers route through the span token from
        the first write on; ``self.range`` keeps pointing at the
        original Range for the failover stats."""
        span = self.cluster.keyspace.adopt(self.ranges["reg-us"],
                                           name="reg-us")
        self.span = span
        self.ranges["reg-us"] = span
        self.keys = [(span if table is self.range else table, key, kind)
                     for table, key, kind in self.keys]

    def _split_merge_driver(self, end_ms: float):
        """The keyspace nemesis: force a split at every workload key
        boundary, dwell, then merge everything back — all while the
        recorded clients keep committing.  Every descriptor-generation
        bump races live transactions and stale readers and must stay
        invisible to the serializability/staleness checkers."""
        from ..kv.keyspace import encode_key
        sim, keyspace, span = self.sim, self.cluster.keyspace, self.span
        yield sim.sleep(200.0)
        for key in ("l1", "r0", "r1"):
            while sim.now < end_ms:
                descriptor = span.descriptor_for_key(key)
                if descriptor.start_key == encode_key(key):
                    break  # already a boundary
                try:
                    keyspace.split(descriptor, key, trigger="forced")
                    break
                except ValueError:
                    # Mid-failover (no lease): retry shortly.
                    yield sim.sleep(100.0)
            yield sim.sleep(250.0)
        yield sim.sleep(500.0)
        while sim.now < end_ms and len(span.descriptors) > 1:
            merged = False
            for left, right in zip(span.descriptors,
                                   span.descriptors[1:]):
                if keyspace.can_merge(left, right):
                    keyspace.merge(left, right)
                    merged = True
                    break
            # Locks drain / lease settles between attempts.
            yield sim.sleep(150.0 if merged else 100.0)

    # -- clock-fault scenarios ----------------------------------------------

    def clock_jump_victim(self) -> int:
        """The home region's second gateway: a node whose clients stamp
        transactions with *its* clock, so a beyond-bound jump there
        produces future-time write timestamps on every range."""
        return self.cluster.gateway_for_region(self.home, 1).node_id

    def _setup_clock(self, scenario: str) -> None:
        """Install the clock-safety monitor (fencing disabled for the
        ablation) and, for the jump scenarios, the liveness machinery:
        heartbeats carry the clock readings the monitor measures with,
        and the replicate queue repairs around a fenced victim.  The
        ablation keeps the identical setup so offsets are still
        measured and exported — it differs *only* in not acting."""
        fence = scenario != "clock-jump-nofence"
        self.clock_monitor = install_clock_monitor(
            self.cluster, fence_enabled=fence)
        if scenario in ("clock-jump", "clock-jump-nofence"):
            self.liveness = StoreLiveness(
                self.cluster, heartbeat_interval_ms=100.0,
                time_until_store_dead_ms=600.0)
            self.repair_queue = ReplicateQueue(
                self.cluster, self.liveness, interval_ms=200.0)
            for name in sorted(self.ranges):
                self.repair_queue.manage(self.ranges[name],
                                         self.configs[name])
            self.repair_queue.start()

    def _clock_events(self, scenario: str) -> List[FaultEvent]:
        clock = self.cluster.clock
        if scenario == "clock-drift":
            lease_node = self.range.leaseholder_node_id
            victims = [p.node.node_id for p in self.range.group.voters()
                       if p.node.node_id != lease_node][:2]
            events = []
            for index, node_id in enumerate(victims):
                rate = 0.03 if index % 2 == 0 else -0.03
                events.append(FaultEvent(
                    name=f"clock-drift:n{node_id}",
                    at_ms=200.0,
                    inject=lambda n=node_id, r=rate: clock.set_drift(n, r),
                    heal_at_ms=2000.0,
                    heal=lambda n=node_id: clock.heal(n)))
            return events
        victim = self.clock_jump_victim()
        return [FaultEvent(
            name=f"clock-jump:n{victim}",
            at_ms=250.0,
            inject=lambda: clock.jump(victim, CLOCK_JUMP_MS))]

    # -- the run ------------------------------------------------------------

    def _init_keys(self) -> None:
        gateway = self.cluster.gateway_for_region(self.home)
        for table, key, kind in self.keys:

            def init_fn(txn, table=table, key=key, kind=kind):
                initial = [] if kind == "list" else f"init:{key}"
                yield from txn.write(table, key, initial)

            self.sim.run_until_future(self.sim.spawn(
                self.coord.run(gateway, init_fn, label="init")))

    def _audit(self) -> Dict[str, Any]:
        """Strong-read every key from every live region; the first live
        region's answers become the final state (disagreements surface
        as stale-strong-read / final-state anomalies)."""
        final: Dict[str, Any] = {}
        network = self.cluster.network
        for region in self.regions:
            live = [n for n in self.cluster.nodes_in_region(region)
                    if not network.node_is_dead(n.node_id)]
            if not live:
                continue
            gateway = live[0]
            values: Dict[str, Any] = {}

            def audit_fn(txn, values=values):
                for table, key, _kind in self.keys:
                    value = yield from txn.read(table, key)
                    values[f"{table.name}/{key}"] = value

            self.sim.run_until_future(self.sim.spawn(self.coord.run(
                gateway, audit_fn, label=f"final-{region}")))
            for key, value in values.items():
                final.setdefault(key, value)
        return final

    def run(self, scenario: Optional[str] = None,
            clients_per_region: int = 2, ops_per_client: int = 8,
            stale_ops: int = 6) -> VerifyResult:
        sim = self.sim
        scenario_name = scenario or "none"
        self.recorder.meta.update(
            {"scenario": scenario_name, "seed": self.seed})
        split_merge = scenario == "split-merge"
        if split_merge:
            self._setup_split_merge()
        self._init_keys()
        sim.run(until=sim.now + 600.0)  # settle replication + closed ts

        start_ms = sim.now
        nemesis = None
        overload = scenario == "overload"
        clock_scenario = scenario in CLOCK_SCENARIOS
        occ_ablation = scenario == OCC_ABLATION_SCENARIO
        if overload:
            # The nemesis is load, not faults: saturating background
            # arrivals against the home store while admission control
            # sheds work.  Recorded clients get deadlines.
            self._setup_overload()
            for index, region in enumerate(self.regions):
                sim.spawn(self._bg_arrivals(
                    region, index, start_ms + OVERLOAD_WINDOW_MS),
                    name=f"bg-arrivals-{region}")
        elif clock_scenario:
            self._setup_clock(scenario)
            nemesis = Nemesis(self.cluster, self._clock_events(scenario))
            nemesis.schedule(base_ms=start_ms)
        elif split_merge:
            # The nemesis is the keyspace itself: forced splits and
            # merges reshape the primary range under the live workload.
            sim.spawn(self._split_merge_driver(start_ms + 6000.0),
                      name="split-merge-driver")
        elif occ_ablation:
            # The nemesis is the protocol itself: epoch-OCC with
            # commit-time validation disabled; no faults injected.
            pass
        elif scenario:
            nemesis = Nemesis(self.cluster, build_faults(scenario, self))
            nemesis.schedule(base_ms=start_ms)
        processes = []
        for index, region in enumerate(self.regions):
            for client in range(clients_per_region):
                processes.append(sim.spawn(self.txn_client(
                    f"txn-{region}-{client}", region,
                    (index + client) % 2, ops_per_client)))
            processes.append(sim.spawn(self.stale_client(
                f"stale-{region}", region, (index + 1) % 2, stale_ops)))
        if clock_scenario:
            # Recency probes on healthy gateways (index 0 in the home
            # region — index 1 is the jump victim).
            for index, region in enumerate(self.regions):
                processes.append(sim.spawn(self.probe_client(
                    f"probe-{region}", region, index % 2, ops=60)))
        for process in processes:
            sim.run_until_future(process)
        duration = sim.now - start_ms

        if nemesis is not None:
            # clock-jump's fenced victim stays down: the point is that
            # the replicate queue repairs around it, not that a restart
            # saves the day.
            nemesis.heal_all(restart_dead=(scenario != "clock-jump"))
        sim.run(until=sim.now + 2000.0)
        self.recorder.final = self._audit()

        history = self.recorder.finalize()
        report = check(history)
        stats = {
            "txns_recorded": len(history.txns),
            "failovers": self.range.failovers,
            "rpc_retries": self.ds.rpc_retries,
            "messages_dropped": self.cluster.network.messages_dropped,
            "ambiguous_commits": self.coord.stats.ambiguous_commits,
            "txn_retries": self.coord.stats.aborted_retries,
            "validation_aborts": self.coord.stats.validation_aborts,
        }
        if overload:
            stats["fg_shed"] = self._fg_shed
            for key in sorted(self._bg_stats):
                stats[f"bg_{key}"] = self._bg_stats[key]
        if split_merge:
            keyspace = self.cluster.keyspace
            stats["keyspace_splits"] = keyspace.splits
            stats["keyspace_merges"] = keyspace.merges
            stats["final_ranges"] = len(self.span.descriptors)
            stats["range_cache_invalidations"] = \
                self.ds.range_cache_invalidations
        if self.clock_monitor is not None:
            stats["clock_fences"] = len(self.clock_monitor.fence_events)
            stats["clock_outliers"] = len(
                self.clock_monitor.outlier_detections)
            if self.repair_queue is not None:
                stats["repair_actions"] = \
                    self.repair_queue.metrics.total_actions()
        if occ_ablation:
            # The blind write-write races may also surface as a
            # diverged final audit; recency/staleness noise is tolerated
            # but never required.  Duplicate writes or garbage reads
            # would mean the *protocol machinery* (not just validation)
            # is broken, and fail even the ablation.
            allowed = (OCC_ABLATION_REQUIRED_TYPES
                       | REALTIME_ANOMALY_TYPES
                       | frozenset({"final-state-divergence"}))
            return VerifyResult(
                scenario=scenario_name, seed=self.seed, history=history,
                report=report, duration_ms=duration, stats=stats,
                expect_anomalies=True, allowed_anomaly_types=allowed,
                required_anomaly_types=OCC_ABLATION_REQUIRED_TYPES)
        return VerifyResult(scenario=scenario_name, seed=self.seed,
                            history=history, report=report,
                            duration_ms=duration, stats=stats,
                            expect_anomalies=(
                                scenario == "clock-jump-nofence"))


def run_verify(scenario: Optional[str] = None, seed: int = 0,
               protocol=None, **kwargs) -> VerifyResult:
    """Run the randomized isolation/staleness verification workload.

    ``scenario`` is a chaos schedule name (``repro.chaos.SCENARIOS``) or
    None for a fault-free run; ``protocol`` selects the transaction
    backend ("crdb" default, "epoch-occ" for the differential sweep).
    The ``occ-novalidate`` scenario forces the validation-off epoch-OCC
    ablation regardless of ``protocol``.
    """
    if scenario in ("none", ""):
        scenario = None
    if scenario == OCC_ABLATION_SCENARIO:
        from ..txn.epoch import EpochOccProtocol
        protocol = EpochOccProtocol(validate=False)
    return VerifyHarness(seed, protocol=protocol).run(scenario=scenario,
                                                      **kwargs)
