"""Elle-style transactional anomaly checker (pure, deterministic).

Given a :class:`~repro.verify.history.VerifyHistory`, reconstruct the
per-key version order from the recorded writes, build the transaction
dependency graph, and search it for isolation anomalies:

* **G0** (write cycle), **G1c** (circular information flow),
  **G-single** (single anti-dependency cycle) and **G2** (write skew /
  multi anti-dependency cycle) — reported with the offending cycle;
* **G1a** (aborted read) and **G1b** (intermediate read);
* **lost updates** (two committed read-modify-writes of one version);
* **lost acked writes** (a committed list append missing from the final
  state) and final-state divergence;
* inference failures: duplicate write values, garbage reads, and
  version orders where the data-derived order contradicts the commit
  timestamps (``incompatible-order`` — itself serializability
  evidence).

Version order inference follows Elle's two workload registers:

* **list keys** record the full list on every append, so the version
  order is the unique strict-prefix chain over the written lists — a
  data-derived order that does not trust timestamps, which is then
  cross-checked against commit-timestamp order;
* **register keys** carry globally unique written values, ordered by
  commit timestamp (MVCC guarantees one version per timestamp per key).

Only *strong* committed transactions enter the dependency graph: stale
reads (exact/bounded staleness) are point-in-time snapshot reads whose
correctness is a recency/staleness property, checked separately by
:mod:`repro.verify.realtime`.  Indeterminate transactions (ambiguous
commits) are promoted into the graph iff their writes were observed —
by a committed read or by the final state — and ignored otherwise.

Everything here is a pure function of the history: re-checking a dumped
history file yields a byte-identical report.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set, Tuple

from .history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    RecordedTxn,
    VerifyHistory,
)

__all__ = ["Anomaly", "VerifyReport", "check", "CYCLE_ANOMALIES"]

#: Cycle classes, in increasing strength of what they violate.
CYCLE_ANOMALIES = ("G0", "G1c", "G-single", "G2")


@dataclass
class Anomaly:
    """One detected violation, with a machine-checkable witness."""

    type: str
    key: str = ""
    description: str = ""
    witness: Dict[str, Any] = field(default_factory=dict)

    def to_json(self) -> Dict[str, Any]:
        return {"type": self.type, "key": self.key,
                "description": self.description, "witness": self.witness}

    def sort_key(self) -> Tuple[str, str, str]:
        return (self.type, self.key, self.description)


@dataclass
class VerifyReport:
    """The checker verdict: anomalies + what was actually checked."""

    anomalies: List[Anomaly] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.anomalies

    def to_json(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "anomalies": [a.to_json() for a in self.anomalies],
            "checks_run": list(self.checks_run),
            "stats": dict(self.stats),
        }

    def dumps(self) -> str:
        """Canonical JSON text — byte-identical across re-checks."""
        return json.dumps(self.to_json(), indent=2, sort_keys=True)

    def render(self) -> str:
        lines = [f"verify: {'OK' if self.ok else 'ANOMALIES DETECTED'} "
                 f"({len(self.anomalies)} anomalies)"]
        for check in self.checks_run:
            lines.append(f"  [x] {check}")
        for anomaly in self.anomalies:
            lines.append(f"  !! {anomaly.type} key={anomaly.key or '-'}: "
                         f"{anomaly.description}")
            if anomaly.witness:
                lines.append("     witness: " +
                             json.dumps(anomaly.witness, sort_keys=True))
        if self.stats:
            lines.append("  stats: " + ", ".join(
                f"{k}={v}" for k, v in sorted(self.stats.items())))
        return "\n".join(lines)


def _canon(value: Any) -> Any:
    """Hashable canonical form of a written/observed value."""
    if isinstance(value, list):
        return tuple(_canon(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _canon(v)) for k, v in value.items()))
    return value


def _is_prefix(shorter, longer) -> bool:
    return len(shorter) <= len(longer) and longer[:len(shorter)] == shorter


class _Graph:
    """Dependency graph over committed transactions.

    ``edges[src][dst]`` is the set of dependency types ("ww", "wr",
    "rw") observed from src to dst.
    """

    def __init__(self):
        self.edges: Dict[int, Dict[int, Set[str]]] = {}
        self.nodes: Set[int] = set()

    def add_node(self, txn_id: int) -> None:
        self.nodes.add(txn_id)

    def add_edge(self, src: int, dst: int, kind: str) -> None:
        if src == dst:
            return
        self.nodes.add(src)
        self.nodes.add(dst)
        self.edges.setdefault(src, {}).setdefault(dst, set()).add(kind)

    def successors(self, txn_id: int) -> List[int]:
        return sorted(self.edges.get(txn_id, ()))

    def sccs(self) -> List[List[int]]:
        """Iterative Tarjan; returns non-trivial SCCs, deterministically
        ordered by smallest member."""
        index: Dict[int, int] = {}
        lowlink: Dict[int, int] = {}
        on_stack: Set[int] = set()
        stack: List[int] = []
        counter = [0]
        out: List[List[int]] = []

        for root in sorted(self.nodes):
            if root in index:
                continue
            work: List[Tuple[int, int]] = [(root, 0)]
            while work:
                node, child_index = work.pop()
                if child_index == 0:
                    index[node] = lowlink[node] = counter[0]
                    counter[0] += 1
                    stack.append(node)
                    on_stack.add(node)
                children = self.successors(node)
                advanced = False
                for position in range(child_index, len(children)):
                    child = children[position]
                    if child not in index:
                        work.append((node, position + 1))
                        work.append((child, 0))
                        advanced = True
                        break
                    if child in on_stack:
                        lowlink[node] = min(lowlink[node], index[child])
                if advanced:
                    continue
                if lowlink[node] == index[node]:
                    component: List[int] = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        component.append(member)
                        if member == node:
                            break
                    if len(component) > 1:
                        out.append(sorted(component))
                if work:
                    parent = work[-1][0]
                    lowlink[parent] = min(lowlink[parent], lowlink[node])
        out.sort(key=lambda component: component[0])
        return out

    def shortest_cycle(self, component: List[int]) -> List[int]:
        """A shortest cycle within ``component`` (BFS from its smallest
        member, restricted to the component)."""
        members = set(component)
        start = component[0]
        parent: Dict[int, int] = {}
        frontier = [start]
        seen = {start}
        while frontier:
            next_frontier: List[int] = []
            for node in frontier:
                for child in self.successors(node):
                    if child not in members:
                        continue
                    if child == start:
                        path = [start]
                        cursor = node
                        while cursor != start:
                            path.append(cursor)
                            cursor = parent[cursor]
                        path.append(start)
                        path.reverse()
                        return path  # start ... start
                    if child not in seen:
                        seen.add(child)
                        parent[child] = node
                        next_frontier.append(child)
            frontier = next_frontier
        return [start, start]  # unreachable for a real SCC


def _classify_cycle(graph: _Graph, cycle: List[int]) -> str:
    """Map a dependency cycle to its Adya anomaly class.

    Each edge may carry several dependency types; pick the weakest
    available per edge (ww < wr < rw) so the classification is the
    *minimal* anomaly the cycle proves.
    """
    all_ww = True
    write_read_only = True
    anti_edges = 0
    for src, dst in zip(cycle, cycle[1:]):
        kinds = graph.edges[src][dst]
        if "ww" not in kinds:
            all_ww = False
        if "ww" not in kinds and "wr" not in kinds:
            write_read_only = False
            anti_edges += 1
    if all_ww:
        return "G0"
    if write_read_only:
        return "G1c"
    return "G-single" if anti_edges == 1 else "G2"


def check(history: VerifyHistory) -> "VerifyReport":
    """Run the full anomaly analysis over ``history``."""
    from .realtime import check_realtime  # pure helper, no cycle at runtime

    checker = _Checker(history)
    report = checker.run()
    check_realtime(history, report, checker.acked_writes_by_key)
    report.anomalies.sort(key=Anomaly.sort_key)
    return report


class _Checker:
    def __init__(self, history: VerifyHistory):
        self.history = history
        self.key_kinds: Dict[str, str] = {
            key: spec.get("kind", "register")
            for key, spec in history.meta.get("keys", {}).items()}
        self.committed = [t for t in history.txns if t.status == COMMITTED]
        self.aborted = [t for t in history.txns if t.status == ABORTED]
        self.indeterminate = [t for t in history.txns
                              if t.status == INDETERMINATE]
        self.report = VerifyReport()
        #: (key, canonical value) -> (txn, is_final_write_for_key)
        self.writer_of: Dict[Tuple[str, Any], Tuple[RecordedTxn, bool]] = {}
        #: key -> ordered committed writer txns (version order).
        self.version_order: Dict[str, List[RecordedTxn]] = {}
        #: key -> list of (ack end_ms, commit_ts) for committed writers,
        #: consumed by the real-time checker.
        self.acked_writes_by_key: Dict[str, List[Tuple[float, Any]]] = {}
        #: Memoized read resolutions (one anomaly per offending read).
        self._read_cache: Dict[int, Optional[int]] = {}
        #: txn_ids of indeterminate txns promoted to committed (the
        #: history itself is never mutated — checking is pure).
        self.promoted: Set[int] = set()

    def _kind(self, key: str) -> str:
        return self.key_kinds.get(key, "register")

    def _strong(self, txns) -> List[RecordedTxn]:
        return [t for t in txns if t.mode == "strong"]

    # -- write indexing -----------------------------------------------------

    @staticmethod
    def _final_writes(txn: RecordedTxn) -> Dict[str, Any]:
        """Last written value per key (earlier ones are intermediate)."""
        out: Dict[str, Any] = {}
        for op in txn.writes():
            out[op.key] = op.value
        return out

    def _promote_indeterminates(self) -> None:
        """An ambiguous commit whose writes are visible actually
        committed; fold it into the committed set.  commit_ts is always
        recorded before the ambiguity arises, so ordering still works."""
        observed: Set[Tuple[str, Any]] = set()
        for txn in self.history.txns:
            if txn.status != ABORTED:
                for op in txn.reads():
                    if not op.from_intent:
                        observed.add((op.key, _canon(op.value)))
        final = self.history.final

        def visible(txn: RecordedTxn) -> bool:
            for key, value in self._final_writes(txn).items():
                if (key, _canon(value)) in observed:
                    return True
                if key in final:
                    final_value = final[key]
                    if self._kind(key) == "list":
                        if isinstance(value, list) and \
                                isinstance(final_value, list) and \
                                _is_prefix(value, final_value):
                            return True
                    elif _canon(final_value) == _canon(value):
                        return True
            return False

        promoted = [t for t in self.indeterminate if visible(t)]
        self.promoted = {t.txn_id for t in promoted}
        self.committed.extend(promoted)
        self.indeterminate = [t for t in self.indeterminate
                              if t.txn_id not in self.promoted]
        self.report.stats["promoted_indeterminate"] = len(promoted)

    def _index_writes(self) -> None:
        for txn in self.history.txns:
            finals = self._final_writes(txn)
            for op in txn.writes():
                slot = (op.key, _canon(op.value))
                is_final = finals[op.key] is op.value or \
                    _canon(finals[op.key]) == _canon(op.value)
                previous = self.writer_of.get(slot)
                if previous is not None and previous[0] is not txn:
                    self.report.anomalies.append(Anomaly(
                        type="duplicate-write", key=op.key,
                        description=(
                            f"value {op.value!r} written by both txn "
                            f"{previous[0].txn_id} and txn {txn.txn_id}; "
                            "version inference requires unique writes"),
                        witness={"txns": sorted(
                            [previous[0].txn_id, txn.txn_id])}))
                    continue
                self.writer_of[slot] = (txn, is_final)

    # -- version orders -----------------------------------------------------

    def _build_version_orders(self) -> None:
        writes_by_key: Dict[str, List[RecordedTxn]] = {}
        for txn in self.committed:
            for key in self._final_writes(txn):
                writes_by_key.setdefault(key, []).append(txn)

        for key, writers in sorted(writes_by_key.items()):
            if self._kind(key) == "list":
                order = self._list_order(key, writers)
            else:
                order = self._register_order(key, writers)
            self.version_order[key] = order
            # Only genuinely acknowledged commits create recency
            # obligations: a promoted indeterminate's client saw an
            # ambiguous error, not an ack.
            acked = sorted(
                ((t.end_ms, t.commit_ts) for t in writers
                 if t.status == COMMITTED and t.end_ms is not None
                 and t.commit_ts is not None),
                key=lambda item: item[0])
            self.acked_writes_by_key[key] = acked

    def _list_order(self, key: str,
                    writers: List[RecordedTxn]) -> List[RecordedTxn]:
        """Data-derived order: written lists must form a strict prefix
        chain; cross-checked against commit-timestamp order."""
        entries = []
        for txn in writers:
            value = self._final_writes(txn)[key]
            if not isinstance(value, list):
                self.report.anomalies.append(Anomaly(
                    type="garbage-read", key=key,
                    description=(f"txn {txn.txn_id} wrote non-list value "
                                 f"{value!r} to list key")))
                continue
            entries.append((value, txn))
        entries.sort(key=lambda item: (len(item[0]), item[1].txn_id))
        for (shorter, prev), (longer, nxt) in zip(entries, entries[1:]):
            if len(shorter) == len(longer) or not _is_prefix(shorter, longer):
                self.report.anomalies.append(Anomaly(
                    type="incompatible-order", key=key,
                    description=(
                        f"writes of txns {prev.txn_id} and {nxt.txn_id} do "
                        "not form a prefix chain (divergent list states)"),
                    witness={"values": [list(shorter), list(longer)]}))
        order = [txn for _value, txn in entries]
        by_ts = sorted(
            (t for t in order if t.commit_ts is not None),
            key=lambda t: t.commit_ts)
        if [t.txn_id for t in by_ts] != \
                [t.txn_id for t in order if t.commit_ts is not None]:
            self.report.anomalies.append(Anomaly(
                type="incompatible-order", key=key,
                description=("data-derived version order contradicts "
                             "commit-timestamp order"),
                witness={
                    "data_order": [t.txn_id for t in order],
                    "commit_ts_order": [t.txn_id for t in by_ts]}))
        return order

    def _register_order(self, key: str,
                        writers: List[RecordedTxn]) -> List[RecordedTxn]:
        known = [t for t in writers if t.commit_ts is not None]
        known.sort(key=lambda t: (t.commit_ts, t.txn_id))
        for prev, nxt in zip(known, known[1:]):
            if prev.commit_ts == nxt.commit_ts:
                self.report.anomalies.append(Anomaly(
                    type="incompatible-order", key=key,
                    description=(
                        f"txns {prev.txn_id} and {nxt.txn_id} committed "
                        f"writes at the same timestamp {prev.commit_ts}"),
                    witness={"txns": [prev.txn_id, nxt.txn_id]}))
        return known

    # -- read resolution + graph -------------------------------------------

    def _resolve_read(self, txn: RecordedTxn, op) -> Optional[int]:
        """Version index observed by a read (-1 = initial absent state),
        or None when the read doesn't resolve to a version (own intent,
        anomalous read, unknown value).  Memoized per op so each
        offending read yields exactly one anomaly."""
        if id(op) in self._read_cache:
            return self._read_cache[id(op)]
        result = self._resolve_read_uncached(txn, op)
        self._read_cache[id(op)] = result
        return result

    def _resolve_read_uncached(self, txn: RecordedTxn, op) -> Optional[int]:
        if op.from_intent:
            return None
        order = self.version_order.get(op.key, [])
        if op.value is None and (op.key, None) not in self.writer_of:
            return -1
        slot = (op.key, _canon(op.value))
        entry = self.writer_of.get(slot)
        if entry is None:
            self.report.anomalies.append(Anomaly(
                type="garbage-read", key=op.key,
                description=(f"txn {txn.txn_id} read value {op.value!r} "
                             "that no transaction wrote")))
            return None
        writer, is_final = entry
        if writer is txn:
            return None
        if writer.status == ABORTED:
            self.report.anomalies.append(Anomaly(
                type="G1a", key=op.key,
                description=(f"txn {txn.txn_id} read value {op.value!r} "
                             f"written by aborted txn {writer.txn_id}"),
                witness={"reader": txn.txn_id, "writer": writer.txn_id}))
            return None
        if not is_final:
            self.report.anomalies.append(Anomaly(
                type="G1b", key=op.key,
                description=(f"txn {txn.txn_id} read intermediate value "
                             f"{op.value!r} of txn {writer.txn_id}"),
                witness={"reader": txn.txn_id, "writer": writer.txn_id}))
            return None
        if writer.status == INDETERMINATE and \
                writer.txn_id not in self.promoted:
            # Unreachable after promotion (an observed indeterminate
            # write is promoted), kept as a defensive invariant.
            return None
        try:
            return order.index(writer)
        except ValueError:
            return None

    def _build_graph(self) -> _Graph:
        graph = _Graph()
        strong = self._strong(self.committed)
        for txn in strong:
            graph.add_node(txn.txn_id)
        by_id = {t.txn_id: t for t in strong}

        # ww edges: adjacent versions.
        for key, order in sorted(self.version_order.items()):
            for prev, nxt in zip(order, order[1:]):
                if prev.txn_id in by_id and nxt.txn_id in by_id:
                    graph.add_edge(prev.txn_id, nxt.txn_id, "ww")

        # wr + rw edges from every strong committed read.
        for txn in strong:
            for op in txn.reads():
                version = self._resolve_read(txn, op)
                if version is None:
                    continue
                order = self.version_order.get(op.key, [])
                if version >= 0:
                    writer = order[version]
                    if writer.txn_id in by_id:
                        graph.add_edge(writer.txn_id, txn.txn_id, "wr")
                if version + 1 < len(order):
                    successor = order[version + 1]
                    if successor.txn_id in by_id:
                        graph.add_edge(txn.txn_id, successor.txn_id, "rw")
        return graph

    def _check_cycles(self, graph: _Graph) -> None:
        by_id = {t.txn_id: t for t in self.committed}
        for component in graph.sccs():
            cycle = graph.shortest_cycle(component)
            kind = _classify_cycle(graph, cycle)
            steps = []
            for src, dst in zip(cycle, cycle[1:]):
                steps.append({
                    "from": src, "to": dst,
                    "deps": sorted(graph.edges[src][dst])})
            labels = {node: by_id[node].label for node in component
                      if node in by_id}
            self.report.anomalies.append(Anomaly(
                type=kind,
                description=(f"dependency cycle over txns "
                             f"{cycle[:-1]} ({len(component)}-txn SCC)"),
                witness={"cycle": steps,
                         "labels": {str(k): v
                                    for k, v in sorted(labels.items())}}))

    # -- non-cycle checks ---------------------------------------------------

    def _check_lost_updates(self) -> None:
        """Two committed txns that each read version v of a key and both
        wrote that key lost one of the updates."""
        rmw: Dict[Tuple[str, int], List[int]] = {}
        for txn in self._strong(self.committed):
            wrote = set(self._final_writes(txn))
            seen: Set[Tuple[str, int]] = set()
            for op in txn.reads():
                if op.key not in wrote or op.from_intent:
                    continue
                version = self._resolve_read(txn, op)
                if version is None:
                    continue
                slot = (op.key, version)
                if slot not in seen:
                    seen.add(slot)
                    rmw.setdefault(slot, []).append(txn.txn_id)
        for (key, version), txns in sorted(rmw.items()):
            if len(txns) > 1:
                self.report.anomalies.append(Anomaly(
                    type="lost-update", key=key,
                    description=(
                        f"txns {sorted(txns)} all read version {version} "
                        "and wrote the key; all but one update was lost"),
                    witness={"version": version, "txns": sorted(txns)}))

    def _check_final_state(self) -> None:
        final = self.history.final
        for key, order in sorted(self.version_order.items()):
            if not order:
                continue
            last = self._final_writes(order[-1])[key]
            if key in final and _canon(final[key]) != _canon(last):
                self.report.anomalies.append(Anomaly(
                    type="final-state-divergence", key=key,
                    description=(
                        f"final audit read {final[key]!r} but the last "
                        f"committed version (txn {order[-1].txn_id}) is "
                        f"{last!r}"),
                    witness={"final": final[key], "expected": last}))
            if self._kind(key) == "list" and key in final and \
                    isinstance(final[key], list):
                for txn in order:
                    value = self._final_writes(txn)[key]
                    if isinstance(value, list) and \
                            not _is_prefix(value, final[key]):
                        self.report.anomalies.append(Anomaly(
                            type="lost-write", key=key,
                            description=(
                                f"acknowledged append by txn {txn.txn_id} "
                                "is missing from the final state"),
                            witness={"written": value,
                                     "final": final[key]}))

    def _check_stale_value_reads(self) -> None:
        """Stale statements must still never observe aborted or
        intermediate data (their recency is checked separately)."""
        for txn in self.committed:
            if txn.mode == "strong":
                continue
            for op in txn.reads():
                self._resolve_read(txn, op)

    # -- driver -------------------------------------------------------------

    def run(self) -> VerifyReport:
        report = self.report
        self._promote_indeterminates()
        self._index_writes()
        self._build_version_orders()
        graph = self._build_graph()
        self._check_cycles(graph)
        self._check_lost_updates()
        self._check_stale_value_reads()
        self._check_final_state()
        report.stats.update({
            "txns_committed": len(self.committed),
            "txns_aborted": len(self.aborted),
            "txns_indeterminate": len(self.indeterminate),
            "keys": len(self.version_order),
            "graph_nodes": len(graph.nodes),
            "graph_edges": sum(len(dsts)
                               for dsts in graph.edges.values()),
        })
        report.checks_run.extend([
            "version-order: per-key write order inferred "
            "(list prefix chains + register commit timestamps)",
            "dependency-graph: G0/G1c/G-single/G2 cycle search "
            "over ww/wr/rw edges",
            "aborted/intermediate reads (G1a/G1b)",
            "lost updates (concurrent read-modify-writes of one version)",
            "final-state: audit reads match the last committed version; "
            "no acked append lost",
        ])
        return report
