"""Transactional history recorder.

A :class:`HistoryRecorder` plugs into the transaction coordinator (and,
through it, the SQL session layer): set ``coordinator.recorder`` (or
pass ``Engine(recorder=...)``) and every transactional read, write,
commit, abort and ambiguous outcome is captured as structured
:mod:`repro.verify.history` records over simulated time.  Stale reads
(exact- and bounded-staleness, §5.3) are recorded as single-op
read-only transactions carrying their requested and served timestamps.

The hooks are deliberately cheap — one attribute load and a None check
on the hot paths when recording is off — so leaving the plumbing in
place costs the benchmarks nothing.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, List, Optional

from .history import (
    ABORTED,
    COMMITTED,
    INDETERMINATE,
    RecordedOp,
    RecordedTxn,
    VerifyHistory,
    ts_to_json,
)

__all__ = ["HistoryRecorder"]

#: Internal status for transactions still running.
_PENDING = "pending"


def _full_key(rng, key: Any) -> str:
    return f"{rng.name}/{key}"


def _region_of(gateway) -> str:
    locality = getattr(gateway, "locality", None)
    return getattr(locality, "region", "") or ""


class HistoryRecorder:
    """Collects RecordedTxns as the workload runs; ``finalize()`` emits
    an immutable :class:`VerifyHistory` for the pure checkers."""

    def __init__(self, sim):
        self.sim = sim
        self._txns: Dict[int, RecordedTxn] = {}
        self._order: List[int] = []
        #: Stale-read statements get synthetic negative ids so they can
        #: never collide with coordinator transaction ids.
        self._stale_ids = itertools.count(-1, -1)
        self.meta: Dict[str, Any] = {}
        self.final: Dict[str, Any] = {}

    # -- coordinator hooks --------------------------------------------------

    def on_begin(self, txn, gateway, label: Optional[str]) -> None:
        record = RecordedTxn(
            txn_id=txn.txn_id, label=label or f"txn-{txn.txn_id}",
            region=_region_of(gateway), mode="strong", status=_PENDING,
            begin_ms=self.sim.now)
        self._txns[txn.txn_id] = record
        self._order.append(txn.txn_id)

    def _record(self, txn) -> Optional[RecordedTxn]:
        return self._txns.get(txn.txn_id)

    def on_read(self, txn, rng, key: Any, result) -> None:
        record = self._record(txn)
        if record is None:
            return
        record.ops.append(RecordedOp(
            kind="r", key=_full_key(rng, key), value=result.value,
            version_ts=result.ts, at_ms=self.sim.now,
            from_intent=result.from_intent))

    def on_locking_read(self, txn, rng, key: Any, value: Any) -> None:
        record = self._record(txn)
        if record is None:
            return
        record.ops.append(RecordedOp(
            kind="r", key=_full_key(rng, key), value=value,
            version_ts=None, at_ms=self.sim.now))

    def on_write(self, txn, rng, key: Any, value: Any, written_ts) -> None:
        record = self._record(txn)
        if record is None:
            return
        record.ops.append(RecordedOp(
            kind="w", key=_full_key(rng, key), value=value,
            version_ts=written_ts, at_ms=self.sim.now))

    def on_commit(self, txn) -> None:
        """Called when the commit is acknowledged to the client (after
        any commit wait), so ``end_ms`` is the acknowledgement time the
        real-time checker compares against."""
        record = self._record(txn)
        if record is None or record.status != _PENDING:
            return
        record.status = COMMITTED
        record.commit_ts = txn.commit_ts
        record.end_ms = self.sim.now

    def on_abort(self, txn) -> None:
        """Abort, split by why: the coordinator's retry machinery tags
        the transaction with ``abort_reason`` ("retry", "validation" or
        "fatal") before rolling back; the history keeps the split so
        retryable-validation aborts are distinguishable from client
        errors instead of folding into one opaque abort kind."""
        record = self._record(txn)
        if record is None or record.status != _PENDING:
            return
        record.status = ABORTED
        record.abort_kind = getattr(txn, "abort_reason", None) or "fatal"
        record.end_ms = self.sim.now

    def on_validation_fail(self, txn, rng, key: Any, observed_ts,
                           current_ts) -> None:
        """An epoch-OCC read-set validation failure, recorded as a
        first-class history op (kind "v"): ``value`` holds the version
        the transaction read, ``version_ts`` the version that displaced
        it.  The pure checkers ignore "v" ops; differential tooling uses
        them to attribute abort causes."""
        record = self._record(txn)
        if record is None:
            return
        record.ops.append(RecordedOp(
            kind="v", key=_full_key(rng, key), value=ts_to_json(observed_ts),
            version_ts=current_ts, at_ms=self.sim.now))

    def on_indeterminate(self, txn) -> None:
        """An ambiguous commit: the writes may or may not have applied."""
        record = self._record(txn)
        if record is None or record.status != _PENDING:
            return
        record.status = INDETERMINATE
        record.commit_ts = txn.commit_ts
        record.end_ms = self.sim.now

    # -- stale-read hooks ---------------------------------------------------

    def begin_stale(self, gateway, mode: str, requested_ts,
                    label: Optional[str] = None) -> RecordedTxn:
        """Open a record for one stale-read statement (§5.3)."""
        record = RecordedTxn(
            txn_id=next(self._stale_ids),
            label=label or f"stale-{mode}",
            region=_region_of(gateway), mode=mode, status=_PENDING,
            begin_ms=self.sim.now, requested_ts=requested_ts)
        self._txns[record.txn_id] = record
        self._order.append(record.txn_id)
        return record

    def on_stale_read(self, record: RecordedTxn, rng, key: Any, result,
                      effective_ts=None) -> None:
        record.ops.append(RecordedOp(
            kind="r", key=_full_key(rng, key), value=result.value,
            version_ts=result.ts, at_ms=self.sim.now))
        if effective_ts is not None and (
                record.effective_ts is None
                or effective_ts < record.effective_ts):
            # A statement's effective timestamp is the weakest (lowest)
            # timestamp any of its reads was served at.
            record.effective_ts = effective_ts

    def finish_stale(self, record: RecordedTxn, ok: bool = True) -> None:
        if record.status != _PENDING:
            return
        record.status = COMMITTED if ok else ABORTED
        record.end_ms = self.sim.now

    # -- output -------------------------------------------------------------

    def finalize(self) -> VerifyHistory:
        """Freeze into a VerifyHistory.  Transactions still pending at
        the end of the run were never acknowledged either way; they are
        conservatively treated as indeterminate."""
        txns: List[RecordedTxn] = []
        for txn_id in self._order:
            record = self._txns[txn_id]
            if record.status == _PENDING:
                record.status = INDETERMINATE
            if record.ops or record.status != ABORTED:
                txns.append(record)
        return VerifyHistory(txns=txns, meta=dict(self.meta),
                             final=dict(self.final))
