"""Elle-style transactional consistency verification.

``record -> check -> replay``: a :class:`HistoryRecorder` hooked into
the transaction coordinator / SQL session captures structured
operation histories; :func:`check` reconstructs per-key version orders,
builds the wr/ww/rw dependency graph, and reports isolation anomalies
(G0/G1a/G1b/G1c/G-single/G2, lost updates) plus real-time recency and
staleness-bound violations; :class:`VerifyHarness` generates seeded
random workloads under the chaos nemesis schedules.  Histories and
reports round-trip through JSON deterministically, so any violation is
replayable offline from a dumped file:

    python -m repro verify --scenario region-blackout --seed 3
    python -m repro verify --check history.json
"""

from .checker import Anomaly, VerifyReport, check
from .generator import (
    CLOCK_SCENARIOS,
    OCC_ABLATION_SCENARIO,
    OCC_SWEEP_SCENARIOS,
    VERIFY_SCENARIOS,
    VerifyHarness,
    VerifyResult,
    run_verify,
)
from .history import RecordedOp, RecordedTxn, VerifyHistory
from .recorder import HistoryRecorder

__all__ = [
    "Anomaly", "VerifyReport", "check",
    "VerifyHarness", "VerifyResult", "run_verify", "VERIFY_SCENARIOS",
    "CLOCK_SCENARIOS", "OCC_SWEEP_SCENARIOS", "OCC_ABLATION_SCENARIO",
    "RecordedOp", "RecordedTxn", "VerifyHistory",
    "HistoryRecorder",
]
