#!/usr/bin/env python
"""Engine benchmark driver: runs the fixed-seed suite and maintains
``BENCH_results.json`` at the repo root.

Usage::

    python scripts/bench.py                  # full suite -> update "after"
    python scripts/bench.py --smoke          # quick suite + regression gate
    python scripts/bench.py --smoke --update-baseline
    python scripts/bench.py --capture-before # record pre-change numbers

Modes:

* default (full): run kv/movr/tpcc with obs full and off, store the
  rows under ``"after"``, and recompute speedups against the stored
  ``"before"`` rows.  Allocation counters (``peak_alloc_kb``/
  ``alloc_count``) are recorded only with ``--alloc`` — the extra
  tracemalloc pass is separate from (and never taints) the timed pass.
* ``--capture-before``: same suite (both obs modes) stored under
  ``"before"`` — run this on the *old* checkout when refreshing the
  trajectory, with the same flags as the "after" run so the
  comparison is like-for-like.
* ``--smoke``: reduced-scale suite (no alloc pass, ≤60 s), stored under
  ``"smoke_latest"``; exits non-zero if any (workload, obs) pair's
  events/sec regressed more than ``--tolerance`` (default 25%) below
  the committed ``"smoke"`` baseline.  ``--update-baseline`` promotes
  the fresh rows to be the new baseline.
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.harness.bench import (  # noqa: E402
    BENCH_WORKLOADS, bench_suite, check_regression, render_rows)

RESULTS_PATH = os.path.join(os.path.dirname(__file__), "..",
                            "BENCH_results.json")
SMOKE_SCALE = 0.25


def _load(path):
    if os.path.exists(path):
        with open(path) as fh:
            return json.load(fh)
    return {"schema": 1, "seed": 0}


def _save(path, doc):
    with open(path, "w") as fh:
        json.dump(doc, fh, indent=2, sort_keys=True)
        fh.write("\n")


def _speedups(doc):
    """events/sec ratios of the "after" rows vs the "before" (obs-full)
    rows, per workload."""
    before = {r["workload"]: r for r in doc.get("before", [])
              if r["obs"] == "full"}
    out = {}
    for row in doc.get("after", []):
        base = before.get(row["workload"])
        if base and base.get("events_per_sec"):
            key = f"{row['workload']}_obs_{row['obs']}_vs_before_full"
            out[key] = round(row["events_per_sec"]
                             / base["events_per_sec"], 2)
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="reduced-scale run + regression gate")
    parser.add_argument("--capture-before", action="store_true",
                        help="store this checkout's numbers as 'before'")
    parser.add_argument("--update-baseline", action="store_true",
                        help="with --smoke: promote fresh rows to the "
                             "committed smoke baseline")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scale", type=float, default=None,
                        help="op-count multiplier (default 1.0, smoke "
                             f"{SMOKE_SCALE})")
    parser.add_argument("--alloc", action="store_true",
                        help="also record peak_alloc_kb/alloc_count via "
                             "a separate tracemalloc pass")
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed passes per row; fastest wins "
                             "(default 3)")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed events/sec drop vs baseline "
                             "(default 0.25)")
    parser.add_argument("--out", default=RESULTS_PATH,
                        help="results file (default BENCH_results.json)")
    args = parser.parse_args(argv)

    doc = _load(args.out)
    doc.setdefault("schema", 1)
    doc["seed"] = args.seed

    if args.smoke:
        scale = args.scale if args.scale is not None else SMOKE_SCALE
        print(f"bench smoke (seed={args.seed}, scale={scale}):")
        rows = bench_suite(BENCH_WORKLOADS, seed=args.seed, scale=scale,
                           measure_allocs=False, log=print)
        doc["smoke_latest"] = rows
        failures = check_regression({"smoke": rows}, doc,
                                    tolerance=args.tolerance)
        if args.update_baseline or "smoke" not in doc:
            doc["smoke"] = rows
            failures = []
            print("smoke baseline updated")
        _save(args.out, doc)
        print(render_rows(rows))
        if failures:
            print("\nREGRESSION vs committed baseline:")
            for failure in failures:
                print(f"  {failure}")
            return 1
        print("\nno regression vs committed baseline "
              f"(tolerance {args.tolerance:.0%})")
        return 0

    scale = args.scale if args.scale is not None else 1.0
    if args.capture_before:
        print(f"bench capture-before (seed={args.seed}, scale={scale}):")
        rows = bench_suite(BENCH_WORKLOADS, seed=args.seed, scale=scale,
                           measure_allocs=args.alloc,
                           repeats=args.repeats, log=print)
        doc["before"] = rows
    else:
        print(f"bench full suite (seed={args.seed}, scale={scale}):")
        rows = bench_suite(BENCH_WORKLOADS, seed=args.seed, scale=scale,
                           measure_allocs=args.alloc,
                           repeats=args.repeats, log=print)
        doc["after"] = rows
    doc["speedups"] = _speedups(doc)
    _save(args.out, doc)
    print(render_rows(rows))
    if doc["speedups"]:
        print("\nspeedups vs before (obs full):")
        for key in sorted(doc["speedups"]):
            print(f"  {key:<40s} {doc['speedups'][key]:.2f}x")
    print(f"\nresults written to {os.path.relpath(args.out)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
