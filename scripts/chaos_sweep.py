#!/usr/bin/env python
"""Tier-2 chaos sweep: every built-in nemesis scenario across N seeds.

Usage::

    python scripts/chaos_sweep.py [--seeds N] [--scenario NAME] [-v]
                                  [--metrics-out DIR] [--verify]

Prints one line per run plus the full report for any failure, and
exits non-zero if any invariant is violated or any run crashes.
``--metrics-out DIR`` additionally writes each run's full metrics
registry snapshot to ``DIR/<scenario>-seed<N>.json``.

``--verify`` additionally runs the Elle-style transactional
consistency sweep (:mod:`repro.verify`) over the same seeds for every
scenario the verify harness supports, and fails the sweep on any
isolation or staleness anomaly.
"""

import argparse
import json
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.chaos import SCENARIOS, run_scenario  # noqa: E402
from repro.verify import VERIFY_SCENARIOS, run_verify  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, default=5,
                        help="seeds 0..N-1 per scenario (default 5)")
    parser.add_argument("--scenario", default=None,
                        help="run only this scenario (default: all)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print the full report for every run")
    parser.add_argument("--metrics-out", default=None, metavar="DIR",
                        help="dump each run's metrics registry snapshot "
                             "to DIR/<scenario>-seed<N>.json")
    parser.add_argument("--verify", action="store_true",
                        help="also run the transactional consistency "
                             "(verify) sweep for supported scenarios")
    args = parser.parse_args(argv)
    if args.metrics_out:
        os.makedirs(args.metrics_out, exist_ok=True)

    names = sorted(SCENARIOS) if args.scenario is None else [args.scenario]
    for name in names:
        if name not in SCENARIOS:
            print(f"unknown scenario {name!r}; known: "
                  f"{', '.join(sorted(SCENARIOS))}", file=sys.stderr)
            return 2

    failures = 0
    for name in names:
        for seed in range(args.seeds):
            start = time.time()
            try:
                result = run_scenario(name, seed)
            except Exception as exc:  # noqa: BLE001 - report and keep going
                failures += 1
                print(f"CRASH  {name:16s} seed={seed}: "
                      f"{type(exc).__name__}: {exc}")
                continue
            wall = time.time() - start
            if args.metrics_out and result.metrics_snapshot is not None:
                path = os.path.join(args.metrics_out,
                                    f"{name}-seed{seed}.json")
                with open(path, "w") as fh:
                    json.dump(result.metrics_snapshot, fh, indent=2,
                              sort_keys=True)
            verdict = "ok    " if result.ok else "FAIL  "
            counts = result.history.counts()
            repair = ""
            if "repair_actions" in result.stats:
                repair = (f" repairs={result.stats['repair_actions']}"
                          f" ttr={result.stats.get('time_to_repair_ms', 0):.0f}ms")
            print(f"{verdict} {name:16s} seed={seed} "
                  f"ops={len(result.history.ops)} "
                  f"ok/fail/amb={counts['ok']}/{counts['fail']}/"
                  f"{counts['indeterminate']} "
                  f"failovers={result.stats.get('failovers', 0)}"
                  f"{repair} [{wall:.1f}s]")
            if args.verbose or not result.ok:
                print(result.render())
            if not result.ok:
                failures += 1
    total = len(names) * args.seeds

    if args.verify:
        verify_names = [n for n in names if n in VERIFY_SCENARIOS]
        # The verify harness's "overload" scenario is a load nemesis
        # with no chaos-registry counterpart; sweep it whenever the
        # overload chaos scenarios are in scope.
        if "overload-global" in names:
            verify_names.append("overload")
        # The verify clock-jump pair (defended run + fencing-disabled
        # ablation) rides along with the clock chaos scenarios; the
        # shared "clock-drift" name is already picked up above.
        if "clock-jump-fence" in names:
            verify_names.extend(["clock-jump", "clock-jump-nofence"])
        for name in verify_names:
            for seed in range(args.seeds):
                start = time.time()
                try:
                    result = run_verify(name, seed=seed)
                except Exception as exc:  # noqa: BLE001
                    failures += 1
                    print(f"CRASH  verify/{name:16s} seed={seed}: "
                          f"{type(exc).__name__}: {exc}")
                    continue
                wall = time.time() - start
                verdict = "ok    " if result.ok else "FAIL  "
                print(f"{verdict} verify/{name:16s} seed={seed} "
                      f"txns={result.stats.get('txns_recorded', 0)} "
                      f"anomalies={len(result.report.anomalies)} "
                      f"[{wall:.1f}s]")
                if args.verbose or not result.ok:
                    print(result.report.render())
                if not result.ok:
                    failures += 1
        total += len(verify_names) * args.seeds

    print(f"\n{total - failures}/{total} runs clean")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
